#include "kir/eval.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace s2fa::kir {

namespace {

// Coerces a Value to the numeric domain of `type` (the IR is typed, so this
// only bridges int-width families, matching C implicit conversion).
double ToDouble(const Value& v) {
  if (v.is_int()) return v.AsInt();
  if (v.is_long()) return static_cast<double>(v.AsLong());
  if (v.is_float()) return v.AsFloat();
  return v.AsDouble();
}

std::int64_t ToInt64(const Value& v) {
  if (v.is_int()) return v.AsInt();
  if (v.is_long()) return v.AsLong();
  if (v.is_float()) return static_cast<std::int64_t>(v.AsFloat());
  return static_cast<std::int64_t>(v.AsDouble());
}

Value FromDouble(TypeKind kind, double d) {
  switch (kind) {
    case TypeKind::kFloat:
      return Value::OfFloat(static_cast<float>(d));
    case TypeKind::kDouble:
      return Value::OfDouble(d);
    case TypeKind::kLong:
      return Value::OfLong(static_cast<std::int64_t>(d));
    default:
      return Value::OfInt(static_cast<std::int32_t>(d));
  }
}

Value NarrowToKind(TypeKind kind, const Value& v) {
  switch (kind) {
    case TypeKind::kBoolean:
      return Value::OfInt(ToInt64(v) != 0 ? 1 : 0);
    case TypeKind::kByte:
      return Value::OfInt(static_cast<std::int8_t>(ToInt64(v)));
    case TypeKind::kChar:
      return Value::OfInt(static_cast<std::uint16_t>(ToInt64(v)));
    case TypeKind::kShort:
      return Value::OfInt(static_cast<std::int16_t>(ToInt64(v)));
    case TypeKind::kInt:
      return Value::OfInt(static_cast<std::int32_t>(ToInt64(v)));
    case TypeKind::kLong:
      return Value::OfLong(ToInt64(v));
    case TypeKind::kFloat:
      return Value::OfFloat(static_cast<float>(ToDouble(v)));
    case TypeKind::kDouble:
      return Value::OfDouble(ToDouble(v));
    default:
      throw InternalError("bad element type in evaluator");
  }
}

Value NarrowToElement(const Type& type, const Value& v) {
  return NarrowToKind(type.kind(), v);
}

// Comparison with exact integral semantics: two longs must compare by
// value, not by their nearest double (above 2^53 adjacent longs collapse
// to the same double and used to compare equal).
bool CompareValues(BinaryOp op, bool integral, const Value& a,
                   const Value& b) {
  if (integral) {
    const std::int64_t x = ToInt64(a);
    const std::int64_t y = ToInt64(b);
    switch (op) {
      case BinaryOp::kLt: return x < y;
      case BinaryOp::kLe: return x <= y;
      case BinaryOp::kGt: return x > y;
      case BinaryOp::kGe: return x >= y;
      case BinaryOp::kEq: return x == y;
      case BinaryOp::kNe: return x != y;
      default: return false;
    }
  }
  const double x = ToDouble(a);
  const double y = ToDouble(b);
  switch (op) {
    case BinaryOp::kLt: return x < y;
    case BinaryOp::kLe: return x <= y;
    case BinaryOp::kGt: return x > y;
    case BinaryOp::kGe: return x >= y;
    case BinaryOp::kEq: return x == y;
    case BinaryOp::kNe: return x != y;
    default: return false;
  }
}

// Floating binary arithmetic in the operand precision. min/max follow Java
// semantics (jvm::JavaFMin/JavaFMax): NaN propagates and -0.0 < +0.0,
// matching the Math.min/max bytecode these ops were compiled from.
template <typename T>
T ApplyFloatBin(BinaryOp op, T x, T y) {
  switch (op) {
    case BinaryOp::kAdd: return x + y;
    case BinaryOp::kSub: return x - y;
    case BinaryOp::kMul: return x * y;
    case BinaryOp::kDiv: return x / y;
    case BinaryOp::kRem: return std::fmod(x, y);
    case BinaryOp::kMin: return jvm::JavaFMin(x, y);
    case BinaryOp::kMax: return jvm::JavaFMax(x, y);
    default:
      throw InternalError("bitwise op on float in evaluator");
  }
}

std::int64_t ApplyIntBin(BinaryOp op, bool wide, std::int64_t x,
                         std::int64_t y) {
  switch (op) {
    case BinaryOp::kAdd: return x + y;
    case BinaryOp::kSub: return x - y;
    case BinaryOp::kMul: return x * y;
    case BinaryOp::kDiv:
      S2FA_REQUIRE(y != 0, "division by zero in kernel");
      return x / y;
    case BinaryOp::kRem:
      S2FA_REQUIRE(y != 0, "remainder by zero in kernel");
      return x % y;
    case BinaryOp::kShl: return x << (y & (wide ? 63 : 31));
    case BinaryOp::kShr: return x >> (y & (wide ? 63 : 31));
    case BinaryOp::kUShr:
      if (wide) {
        return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) >>
                                         (y & 63));
      }
      return static_cast<std::int32_t>(
          static_cast<std::uint32_t>(static_cast<std::int32_t>(x)) >>
          (y & 31));
    case BinaryOp::kAnd: return x & y;
    case BinaryOp::kOr: return x | y;
    case BinaryOp::kXor: return x ^ y;
    case BinaryOp::kMin: return std::min(x, y);
    case BinaryOp::kMax: return std::max(x, y);
    default:
      throw InternalError("unhandled int binop");
  }
}

Value ApplyIntrinsic(Intrinsic fn, TypeKind result, double x, double y) {
  if (result == TypeKind::kFloat) {
    // Match C's f-suffixed functions: compute in float.
    float fx = static_cast<float>(x);
    float fy = static_cast<float>(y);
    switch (fn) {
      case Intrinsic::kExp: return Value::OfFloat(std::exp(fx));
      case Intrinsic::kLog: return Value::OfFloat(std::log(fx));
      case Intrinsic::kSqrt: return Value::OfFloat(std::sqrt(fx));
      case Intrinsic::kAbs: return Value::OfFloat(std::fabs(fx));
      case Intrinsic::kPow: return Value::OfFloat(std::pow(fx, fy));
    }
    S2FA_UNREACHABLE("bad intrinsic");
  }
  auto compute = [&]() -> double {
    switch (fn) {
      case Intrinsic::kExp: return std::exp(x);
      case Intrinsic::kLog: return std::log(x);
      case Intrinsic::kSqrt: return std::sqrt(x);
      case Intrinsic::kAbs: return std::fabs(x);
      case Intrinsic::kPow: return std::pow(x, y);
    }
    S2FA_UNREACHABLE("bad intrinsic");
  };
  return FromDouble(result, compute());
}

Value ApplyUnary(UnaryOp op, TypeKind operand, const Value& a) {
  switch (op) {
    case UnaryOp::kNeg:
      if (operand == TypeKind::kFloat) {
        return Value::OfFloat(-static_cast<float>(ToDouble(a)));
      }
      if (operand == TypeKind::kDouble) {
        return Value::OfDouble(-ToDouble(a));
      }
      if (operand == TypeKind::kLong) return Value::OfLong(-ToInt64(a));
      return Value::OfInt(static_cast<std::int32_t>(-ToInt64(a)));
    case UnaryOp::kBitNot:
      if (operand == TypeKind::kLong) return Value::OfLong(~ToInt64(a));
      return Value::OfInt(static_cast<std::int32_t>(~ToInt64(a)));
    case UnaryOp::kLogicalNot:
      return Value::OfInt(ToInt64(a) == 0 ? 1 : 0);
  }
  S2FA_UNREACHABLE("bad unary op");
}

}  // namespace

// --------------------------------------------------------------------------
// Evaluator: slot-resolved hot path.
// --------------------------------------------------------------------------

Evaluator::Evaluator(const Kernel& kernel) : kernel_(kernel) {
  kernel.Validate();
  for (std::size_t i = 0; i < kernel_.buffers.size(); ++i) {
    // Buffer names are unique (Validate), so id == declaration index.
    buffer_id_by_name_.emplace(kernel_.buffers[i].name,
                               static_cast<std::int32_t>(i));
  }
  bufs_.assign(kernel_.buffers.size(), nullptr);
  scalar_slots_.reserve(kernel_.scalars.size());
  for (const auto& s : kernel_.scalars) {
    scalar_slots_.push_back(VarSlot(s.name));
  }
  root_ = CompileStmt(*kernel_.body);
  slots_.assign(var_names_.size(), Value());
  bound_.assign(var_names_.size(), 0);
}

std::int32_t Evaluator::VarSlot(const std::string& name) {
  auto it = var_slots_.find(name);
  if (it != var_slots_.end()) return it->second;
  const auto slot = static_cast<std::int32_t>(var_names_.size());
  var_names_.push_back(name);
  var_slots_.emplace(name, slot);
  return slot;
}

std::int32_t Evaluator::CompileExpr(const ExprPtr& expr) {
  const Expr& e = *expr;
  RExpr r;
  r.kind = e.kind();
  r.type = e.type().kind();
  switch (e.kind()) {
    case ExprKind::kIntLit:
      r.lit = r.type == TypeKind::kLong
                  ? Value::OfLong(e.int_value())
                  : Value::OfInt(static_cast<std::int32_t>(e.int_value()));
      break;
    case ExprKind::kFloatLit:
      r.lit = FromDouble(r.type, e.float_value());
      break;
    case ExprKind::kVar:
      r.slot = VarSlot(e.name());
      break;
    case ExprKind::kArrayRef:
      // Validate() guarantees the buffer is declared.
      r.slot = buffer_id_by_name_.at(e.name());
      r.a = CompileExpr(e.operands()[0]);
      break;
    case ExprKind::kBinary: {
      r.a = CompileExpr(e.operands()[0]);
      r.b = CompileExpr(e.operands()[1]);
      r.bop = e.binary_op();
      const Type& t = e.operands()[0]->type();
      r.opnd = t.kind();
      if (IsComparison(r.bop)) {
        r.form = t.is_integral() ? BinForm::kCmpInt : BinForm::kCmpFloat;
      } else if (r.bop == BinaryOp::kLAnd || r.bop == BinaryOp::kLOr) {
        r.form = BinForm::kLogical;
      } else if (t.kind() == TypeKind::kFloat) {
        r.form = BinForm::kFloat32;
      } else if (t.kind() == TypeKind::kDouble) {
        r.form = BinForm::kFloat64;
      } else if (t.kind() == TypeKind::kLong) {
        r.form = BinForm::kInt64;
      } else {
        r.form = BinForm::kInt32;
      }
      break;
    }
    case ExprKind::kUnary:
      r.a = CompileExpr(e.operands()[0]);
      r.uop = e.unary_op();
      r.opnd = e.operands()[0]->type().kind();
      break;
    case ExprKind::kCall:
      r.fn = e.intrinsic();
      r.a = CompileExpr(e.operands()[0]);
      if (e.operands().size() > 1) r.b = CompileExpr(e.operands()[1]);
      break;
    case ExprKind::kCast:
      r.a = CompileExpr(e.operands()[0]);
      break;
    case ExprKind::kSelect:
      r.a = CompileExpr(e.operands()[0]);
      r.b = CompileExpr(e.operands()[1]);
      r.c = CompileExpr(e.operands()[2]);
      break;
  }
  rexprs_.push_back(std::move(r));
  return static_cast<std::int32_t>(rexprs_.size() - 1);
}

std::int32_t Evaluator::CompileStmt(const Stmt& stmt) {
  RStmt s;
  s.kind = stmt.kind();
  switch (stmt.kind()) {
    case StmtKind::kAssign: {
      s.a = CompileExpr(stmt.rhs());
      const Expr& lhs = *stmt.lhs();
      s.store = lhs.type().kind();
      if (lhs.kind() == ExprKind::kVar) {
        s.lhs_is_var = true;
        s.slot = VarSlot(lhs.name());
      } else {
        s.lhs_is_var = false;
        s.slot = buffer_id_by_name_.at(lhs.name());
        s.index = CompileExpr(lhs.operands()[0]);
      }
      break;
    }
    case StmtKind::kDecl:
      s.slot = VarSlot(stmt.decl_name());
      s.store = stmt.decl_type().kind();
      s.dflt = jvm::DefaultValue(stmt.decl_type());
      if (stmt.init()) s.a = CompileExpr(stmt.init());
      break;
    case StmtKind::kIf:
      s.a = CompileExpr(stmt.cond());
      s.body = CompileStmt(*stmt.then_stmt());
      if (stmt.else_stmt()) s.els = CompileStmt(*stmt.else_stmt());
      break;
    case StmtKind::kFor:
      s.slot = VarSlot(stmt.loop_var());
      s.trip = stmt.trip_count();
      s.body = CompileStmt(*stmt.body());
      break;
    case StmtKind::kBlock:
      s.stmts.reserve(stmt.stmts().size());
      for (const auto& st : stmt.stmts()) {
        s.stmts.push_back(CompileStmt(*st));
      }
      break;
  }
  rstmts_.push_back(std::move(s));
  return static_cast<std::int32_t>(rstmts_.size() - 1);
}

Value Evaluator::EvalExpr(std::int32_t idx) {
  if (++steps_ > max_steps_) {
    throw InternalError("IR evaluator step budget exceeded");
  }
  const RExpr& r = rexprs_[static_cast<std::size_t>(idx)];
  switch (r.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
      return r.lit;
    case ExprKind::kVar:
      S2FA_CHECK(bound_[static_cast<std::size_t>(r.slot)],
                 "unbound variable "
                     << var_names_[static_cast<std::size_t>(r.slot)]);
      return slots_[static_cast<std::size_t>(r.slot)];
    case ExprKind::kArrayRef: {
      std::int64_t index = ToInt64(EvalExpr(r.a));
      const std::vector<Value>& vec =
          *bufs_[static_cast<std::size_t>(r.slot)];
      S2FA_REQUIRE(
          index >= 0 && static_cast<std::size_t>(index) < vec.size(),
          "index " << index << " out of bounds for buffer "
                   << kernel_.buffers[static_cast<std::size_t>(r.slot)].name
                   << " (size " << vec.size() << ")");
      return vec[static_cast<std::size_t>(index)];
    }
    case ExprKind::kBinary: {
      Value a = EvalExpr(r.a);
      Value b = EvalExpr(r.b);
      switch (r.form) {
        case BinForm::kCmpInt:
          return Value::OfInt(CompareValues(r.bop, true, a, b) ? 1 : 0);
        case BinForm::kCmpFloat:
          return Value::OfInt(CompareValues(r.bop, false, a, b) ? 1 : 0);
        case BinForm::kLogical:
          if (r.bop == BinaryOp::kLAnd) {
            return Value::OfInt(
                (ToInt64(a) != 0 && ToInt64(b) != 0) ? 1 : 0);
          }
          return Value::OfInt((ToInt64(a) != 0 || ToInt64(b) != 0) ? 1 : 0);
        case BinForm::kFloat32:
          return Value::OfFloat(
              ApplyFloatBin<float>(r.bop, static_cast<float>(ToDouble(a)),
                                   static_cast<float>(ToDouble(b))));
        case BinForm::kFloat64:
          return Value::OfDouble(
              ApplyFloatBin<double>(r.bop, ToDouble(a), ToDouble(b)));
        case BinForm::kInt64:
          return Value::OfLong(
              ApplyIntBin(r.bop, true, ToInt64(a), ToInt64(b)));
        case BinForm::kInt32:
          return Value::OfInt(static_cast<std::int32_t>(
              ApplyIntBin(r.bop, false, ToInt64(a), ToInt64(b))));
      }
      S2FA_UNREACHABLE("bad binary form");
    }
    case ExprKind::kUnary:
      return ApplyUnary(r.uop, r.opnd, EvalExpr(r.a));
    case ExprKind::kCall: {
      double x = ToDouble(EvalExpr(r.a));
      double y = r.b >= 0 ? ToDouble(EvalExpr(r.b)) : 0.0;
      return ApplyIntrinsic(r.fn, r.type, x, y);
    }
    case ExprKind::kCast:
      return NarrowToKind(r.type, EvalExpr(r.a));
    case ExprKind::kSelect:
      return ToInt64(EvalExpr(r.a)) != 0 ? EvalExpr(r.b) : EvalExpr(r.c);
  }
  S2FA_UNREACHABLE("bad expr kind");
}

void Evaluator::ExecStmt(std::int32_t idx) {
  if (++steps_ > max_steps_) {
    throw InternalError("IR evaluator step budget exceeded");
  }
  const RStmt& s = rstmts_[static_cast<std::size_t>(idx)];
  switch (s.kind) {
    case StmtKind::kAssign: {
      Value v = EvalExpr(s.a);
      if (s.lhs_is_var) {
        slots_[static_cast<std::size_t>(s.slot)] = NarrowToKind(s.store, v);
        bound_[static_cast<std::size_t>(s.slot)] = 1;
        break;
      }
      std::int64_t index = ToInt64(EvalExpr(s.index));
      std::vector<Value>& vec = *bufs_[static_cast<std::size_t>(s.slot)];
      S2FA_REQUIRE(
          index >= 0 && static_cast<std::size_t>(index) < vec.size(),
          "write index "
              << index << " out of bounds for buffer "
              << kernel_.buffers[static_cast<std::size_t>(s.slot)].name);
      vec[static_cast<std::size_t>(index)] = NarrowToKind(s.store, v);
      break;
    }
    case StmtKind::kDecl: {
      Value v = s.a >= 0 ? EvalExpr(s.a) : s.dflt;
      slots_[static_cast<std::size_t>(s.slot)] = NarrowToKind(s.store, v);
      bound_[static_cast<std::size_t>(s.slot)] = 1;
      break;
    }
    case StmtKind::kIf:
      if (ToInt64(EvalExpr(s.a)) != 0) {
        ExecStmt(s.body);
      } else if (s.els >= 0) {
        ExecStmt(s.els);
      }
      break;
    case StmtKind::kFor: {
      const auto slot = static_cast<std::size_t>(s.slot);
      if (s.trip > 0) bound_[slot] = 1;
      for (std::int64_t i = 0; i < s.trip; ++i) {
        slots_[slot] = Value::OfInt(static_cast<std::int32_t>(i));
        ExecStmt(s.body);
      }
      break;
    }
    case StmtKind::kBlock:
      for (std::int32_t st : s.stmts) ExecStmt(st);
      break;
  }
}

void Evaluator::Run(const std::map<std::string, Value>& scalars,
                    BufferMap& buffers) {
  steps_ = 0;
  std::fill(bound_.begin(), bound_.end(), 0);
  for (std::size_t i = 0; i < kernel_.scalars.size(); ++i) {
    const auto& s = kernel_.scalars[i];
    auto it = scalars.find(s.name);
    S2FA_REQUIRE(it != scalars.end(), "missing scalar argument " << s.name);
    const auto slot = static_cast<std::size_t>(scalar_slots_[i]);
    slots_[slot] = it->second;
    bound_[slot] = 1;
  }
  for (std::size_t i = 0; i < kernel_.buffers.size(); ++i) {
    const auto& b = kernel_.buffers[i];
    auto it = buffers.find(b.name);
    if (it == buffers.end()) {
      S2FA_REQUIRE(b.kind != BufferKind::kInput,
                   "missing input buffer " << b.name);
      it = buffers
               .emplace(b.name,
                        std::vector<Value>(static_cast<std::size_t>(b.length),
                                           jvm::DefaultValue(b.element)))
               .first;
    }
    bufs_[i] = &it->second;
  }
  ExecStmt(root_);
}

// --------------------------------------------------------------------------
// ReferenceEvaluator: the legacy map-keyed tree walker.
// --------------------------------------------------------------------------

ReferenceEvaluator::ReferenceEvaluator(const Kernel& kernel)
    : kernel_(kernel) {
  kernel.Validate();
}

Value ReferenceEvaluator::Eval(const ExprPtr& expr, Env& env) {
  if (++steps_ > max_steps_) {
    throw InternalError("IR evaluator step budget exceeded");
  }
  const Expr& e = *expr;
  switch (e.kind()) {
    case ExprKind::kIntLit:
      if (e.type().kind() == TypeKind::kLong) {
        return Value::OfLong(e.int_value());
      }
      return Value::OfInt(static_cast<std::int32_t>(e.int_value()));
    case ExprKind::kFloatLit:
      return FromDouble(e.type().kind(), e.float_value());
    case ExprKind::kVar: {
      auto it = env.vars.find(e.name());
      S2FA_CHECK(it != env.vars.end(), "unbound variable " << e.name());
      return it->second;
    }
    case ExprKind::kArrayRef: {
      std::int64_t index = ToInt64(Eval(e.operands()[0], env));
      auto it = env.buffers->find(e.name());
      S2FA_CHECK(it != env.buffers->end(), "unbound buffer " << e.name());
      S2FA_REQUIRE(index >= 0 && static_cast<std::size_t>(index) <
                                     it->second.size(),
                   "index " << index << " out of bounds for buffer "
                            << e.name() << " (size " << it->second.size()
                            << ")");
      return it->second[static_cast<std::size_t>(index)];
    }
    case ExprKind::kBinary: {
      Value a = Eval(e.operands()[0], env);
      Value b = Eval(e.operands()[1], env);
      const Type& t = e.operands()[0]->type();
      BinaryOp op = e.binary_op();
      if (IsComparison(op)) {
        return Value::OfInt(
            CompareValues(op, t.is_integral(), a, b) ? 1 : 0);
      }
      if (op == BinaryOp::kLAnd) {
        return Value::OfInt((ToInt64(a) != 0 && ToInt64(b) != 0) ? 1 : 0);
      }
      if (op == BinaryOp::kLOr) {
        return Value::OfInt((ToInt64(a) != 0 || ToInt64(b) != 0) ? 1 : 0);
      }
      if (t.is_floating()) {
        if (t.kind() == TypeKind::kFloat) {
          return Value::OfFloat(
              ApplyFloatBin<float>(op, static_cast<float>(ToDouble(a)),
                                   static_cast<float>(ToDouble(b))));
        }
        return Value::OfDouble(
            ApplyFloatBin<double>(op, ToDouble(a), ToDouble(b)));
      }
      const bool wide = t.kind() == TypeKind::kLong;
      std::int64_t r = ApplyIntBin(op, wide, ToInt64(a), ToInt64(b));
      if (wide) return Value::OfLong(r);
      return Value::OfInt(static_cast<std::int32_t>(r));
    }
    case ExprKind::kUnary:
      return ApplyUnary(e.unary_op(), e.operands()[0]->type().kind(),
                        Eval(e.operands()[0], env));
    case ExprKind::kCall: {
      double x = ToDouble(Eval(e.operands()[0], env));
      double y = e.operands().size() > 1
                     ? ToDouble(Eval(e.operands()[1], env))
                     : 0.0;
      return ApplyIntrinsic(e.intrinsic(), e.type().kind(), x, y);
    }
    case ExprKind::kCast: {
      Value a = Eval(e.operands()[0], env);
      return NarrowToElement(e.type(), a);
    }
    case ExprKind::kSelect: {
      Value c = Eval(e.operands()[0], env);
      return ToInt64(c) != 0 ? Eval(e.operands()[1], env)
                             : Eval(e.operands()[2], env);
    }
  }
  S2FA_UNREACHABLE("bad expr kind");
}

void ReferenceEvaluator::Exec(const Stmt& stmt, Env& env) {
  if (++steps_ > max_steps_) {
    throw InternalError("IR evaluator step budget exceeded");
  }
  switch (stmt.kind()) {
    case StmtKind::kAssign: {
      Value v = Eval(stmt.rhs(), env);
      const Expr& lhs = *stmt.lhs();
      if (lhs.kind() == ExprKind::kVar) {
        env.vars[lhs.name()] = NarrowToElement(lhs.type(), v);
      } else {
        std::int64_t index = ToInt64(Eval(lhs.operands()[0], env));
        auto it = env.buffers->find(lhs.name());
        S2FA_CHECK(it != env.buffers->end(), "unbound buffer " << lhs.name());
        S2FA_REQUIRE(index >= 0 && static_cast<std::size_t>(index) <
                                       it->second.size(),
                     "write index " << index << " out of bounds for buffer "
                                    << lhs.name());
        it->second[static_cast<std::size_t>(index)] =
            NarrowToElement(lhs.type(), v);
      }
      break;
    }
    case StmtKind::kDecl: {
      Value v = stmt.init() ? Eval(stmt.init(), env)
                            : jvm::DefaultValue(stmt.decl_type());
      env.vars[stmt.decl_name()] = NarrowToElement(stmt.decl_type(), v);
      break;
    }
    case StmtKind::kIf: {
      Value c = Eval(stmt.cond(), env);
      if (ToInt64(c) != 0) {
        Exec(*stmt.then_stmt(), env);
      } else if (stmt.else_stmt()) {
        Exec(*stmt.else_stmt(), env);
      }
      break;
    }
    case StmtKind::kFor: {
      for (std::int64_t i = 0; i < stmt.trip_count(); ++i) {
        env.vars[stmt.loop_var()] =
            Value::OfInt(static_cast<std::int32_t>(i));
        Exec(*stmt.body(), env);
      }
      break;
    }
    case StmtKind::kBlock:
      for (const auto& st : stmt.stmts()) Exec(*st, env);
      break;
  }
}

void ReferenceEvaluator::Run(const std::map<std::string, Value>& scalars,
                             BufferMap& buffers) {
  steps_ = 0;
  Env env;
  env.buffers = &buffers;
  for (const auto& s : kernel_.scalars) {
    auto it = scalars.find(s.name);
    S2FA_REQUIRE(it != scalars.end(), "missing scalar argument " << s.name);
    env.vars[s.name] = it->second;
  }
  for (const auto& b : kernel_.buffers) {
    auto it = buffers.find(b.name);
    if (it == buffers.end()) {
      S2FA_REQUIRE(b.kind != BufferKind::kInput,
                   "missing input buffer " << b.name);
      buffers[b.name].assign(static_cast<std::size_t>(b.length),
                             jvm::DefaultValue(b.element));
    }
  }
  Exec(*kernel_.body, env);
}

}  // namespace s2fa::kir
