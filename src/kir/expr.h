// Kernel IR expressions.
//
// The bytecode-to-C compiler lowers verified bytecode into this IR; Merlin
// transformations rewrite it; the HLS estimator schedules it; and the C
// emitter prints it as HLS C. Expressions are immutable trees shared via
// shared_ptr<const Expr>, so transformed kernels can share unchanged
// subtrees with their originals.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "jvm/type.h"

namespace s2fa::kir {

using Type = jvm::Type;
using TypeKind = jvm::TypeKind;

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kRem,
  kShl, kShr, kUShr, kAnd, kOr, kXor,
  kMin, kMax,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLAnd, kLOr,
};

enum class UnaryOp { kNeg, kBitNot, kLogicalNot };

// Math intrinsics that survive into HLS C (mapped onto expf/sqrtf/... and,
// on the FPGA, onto pipelined cores).
enum class Intrinsic { kExp, kLog, kSqrt, kAbs, kPow };

enum class ExprKind {
  kIntLit,     // integer literal (type gives the width)
  kFloatLit,   // float/double literal
  kVar,        // scalar variable reference by name
  kArrayRef,   // buffer[name] indexed by one expression
  kBinary,
  kUnary,
  kCall,       // intrinsic call
  kCast,       // value conversion to `type`
  kSelect,     // cond ? a : b
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  ExprKind kind() const { return kind_; }
  const Type& type() const { return type_; }

  std::int64_t int_value() const { return int_value_; }
  double float_value() const { return float_value_; }
  // Variable or buffer name (kVar/kArrayRef); intrinsic ignored it.
  const std::string& name() const { return name_; }
  Intrinsic intrinsic() const { return intrinsic_; }
  BinaryOp binary_op() const { return binary_op_; }
  UnaryOp unary_op() const { return unary_op_; }
  // Operands: index for kArrayRef, lhs/rhs for kBinary, cond/a/b for
  // kSelect, operand for kUnary/kCast, args for kCall.
  const std::vector<ExprPtr>& operands() const { return operands_; }

  // True if this is an integer literal equal to v.
  bool IsIntLit(std::int64_t v) const {
    return kind_ == ExprKind::kIntLit && int_value_ == v;
  }

  std::string ToString() const;

  // --- factories ---
  static ExprPtr IntLit(std::int64_t v, Type type = Type::Int());
  static ExprPtr FloatLit(double v, Type type = Type::Float());
  static ExprPtr Var(std::string name, Type type);
  static ExprPtr ArrayRef(std::string buffer, Type element, ExprPtr index);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Call(Intrinsic fn, std::vector<ExprPtr> args, Type type);
  static ExprPtr Cast(Type to, ExprPtr operand);
  static ExprPtr Select(ExprPtr cond, ExprPtr then_value, ExprPtr else_value);

 private:
  struct Token {
    explicit Token() = default;
  };

 public:
  // Public only so allocate_shared can construct nodes; Token is private,
  // so the factories remain the sole way to make an Expr.
  explicit Expr(Token) {}

 private:
  // Pool-backed node allocation (kir/arena.h): one pooled chunk holds the
  // control block and the node, so DSE's clone/rewrite churn reuses memory
  // instead of hammering malloc.
  static std::shared_ptr<Expr> New();

  ExprKind kind_ = ExprKind::kIntLit;
  Type type_;
  std::int64_t int_value_ = 0;
  double float_value_ = 0.0;
  std::string name_;
  Intrinsic intrinsic_ = Intrinsic::kExp;
  BinaryOp binary_op_ = BinaryOp::kAdd;
  UnaryOp unary_op_ = UnaryOp::kNeg;
  std::vector<ExprPtr> operands_;
};

const char* BinaryOpName(BinaryOp op);    // C spelling, e.g. "+", "<="
const char* IntrinsicName(Intrinsic fn);  // C spelling, e.g. "exp"
bool IsComparison(BinaryOp op);
bool IsCommutative(BinaryOp op);

// The result type of `op` applied to operands of type `t` (comparisons and
// logical ops yield int; min/max/arith yield t).
Type BinaryResultType(BinaryOp op, const Type& t);

// Walks the tree calling `fn` on every node (pre-order).
void VisitExpr(const ExprPtr& expr, const std::function<void(const Expr&)>& fn);

// Rebuilds `expr` with `map` applied to every node bottom-up; `map` returns
// nullptr to keep a node (with rebuilt operands) or a replacement.
ExprPtr TransformExpr(
    const ExprPtr& expr,
    const std::function<ExprPtr(const Expr&, const std::vector<ExprPtr>&)>&
        map);

// Substitutes every kVar named `name` with `replacement`.
ExprPtr SubstituteVar(const ExprPtr& expr, const std::string& name,
                      const ExprPtr& replacement);

}  // namespace s2fa::kir
