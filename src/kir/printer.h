// HLS C source emission.
//
// Renders a Kernel as a complete, self-contained C file in the shape of the
// paper's Code 3: a `<name>_call` worker function is conceptually inlined
// into a `<name>_kernel` top function whose outermost loop is the RDD
// transformation template. Merlin pragma annotations attached to loops are
// printed as `#pragma ACCEL ...` lines.
#pragma once

#include <string>

#include "kir/kernel.h"

namespace s2fa::kir {

struct CEmitOptions {
  bool emit_prelude = true;      // #include <math.h>, MIN/MAX macros
  bool emit_comments = true;     // loop ids, buffer provenance
};

// Emits the whole kernel as HLS C.
std::string EmitC(const Kernel& kernel, const CEmitOptions& options = {});

// Emits just one expression / statement in C syntax (used by tests).
std::string EmitExprC(const ExprPtr& expr);
std::string EmitStmtC(const StmtPtr& stmt, int indent = 0);

// C spelling of a primitive type (byte -> "char", boolean -> "char", ...).
std::string CTypeName(const Type& type);

}  // namespace s2fa::kir
