#include "kir/arena.h"

#include <mutex>
#include <vector>

namespace s2fa::kir::arena {

namespace {

constexpr std::size_t kAlign = alignof(std::max_align_t);
constexpr std::size_t kSlabBytes = 64 * 1024;
// Chunks above this go straight to operator new (nodes are far smaller;
// the ceiling only matters for PoolAllocator::allocate(n > 1)).
constexpr std::size_t kMaxPooled = 1024;
constexpr std::size_t kNumClasses = kMaxPooled / kAlign;

struct FreeChunk {
  FreeChunk* next;
};

std::size_t ClassOf(std::size_t bytes) {
  return (bytes + kAlign - 1) / kAlign - 1;
}

class Registry {
 public:
  void* Allocate(std::size_t cls) {
    const std::size_t chunk = (cls + 1) * kAlign;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.allocations;
    if (free_[cls] != nullptr) {
      FreeChunk* c = free_[cls];
      free_[cls] = c->next;
      return c;
    }
    if (bump_[cls] + chunk > bump_end_[cls]) {
      auto* slab = static_cast<char*>(::operator new(kSlabBytes));
      slabs_.push_back(slab);
      stats_.slab_bytes += kSlabBytes;
      bump_[cls] = slab;
      bump_end_[cls] = slab + kSlabBytes;
    }
    char* p = bump_[cls];
    bump_[cls] += chunk;
    return p;
  }

  void Deallocate(void* p, std::size_t cls) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frees;
    auto* c = static_cast<FreeChunk*>(p);
    c->next = free_[cls];
    free_[cls] = c;
  }

  Stats GetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  std::mutex mu_;
  std::vector<char*> slabs_;  // never freed; see header
  FreeChunk* free_[kNumClasses] = {};
  char* bump_[kNumClasses] = {};
  char* bump_end_[kNumClasses] = {};
  Stats stats_;
};

// Immortal: constructed on first node allocation, never destroyed, so IR
// nodes held by statics destroyed late can still deallocate safely.
Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

void* Allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooled) return ::operator new(bytes);
  return GetRegistry().Allocate(ClassOf(bytes));
}

void Deallocate(void* p, std::size_t bytes) noexcept {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooled) {
    ::operator delete(p);
    return;
  }
  GetRegistry().Deallocate(p, ClassOf(bytes));
}

Stats GetStats() { return GetRegistry().GetStats(); }

}  // namespace s2fa::kir::arena
