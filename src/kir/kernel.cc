#include "kir/kernel.h"

#include <set>

#include "support/error.h"

namespace s2fa::kir {

const char* PatternName(ParallelPattern pattern) {
  switch (pattern) {
    case ParallelPattern::kMap: return "map";
    case ParallelPattern::kReduce: return "reduce";
  }
  S2FA_UNREACHABLE("bad pattern");
}

const Buffer* Kernel::FindBuffer(const std::string& buffer_name) const {
  for (const auto& b : buffers) {
    if (b.name == buffer_name) return &b;
  }
  return nullptr;
}

std::vector<const Buffer*> Kernel::InputBuffers() const {
  std::vector<const Buffer*> out;
  for (const auto& b : buffers) {
    if (b.kind == BufferKind::kInput) out.push_back(&b);
  }
  return out;
}

std::vector<const Buffer*> Kernel::OutputBuffers() const {
  std::vector<const Buffer*> out;
  for (const auto& b : buffers) {
    if (b.kind == BufferKind::kOutput) out.push_back(&b);
  }
  return out;
}

std::vector<const Buffer*> Kernel::LocalBuffers() const {
  std::vector<const Buffer*> out;
  for (const auto& b : buffers) {
    if (b.kind == BufferKind::kLocal) out.push_back(&b);
  }
  return out;
}

int Kernel::MaxLoopId() const {
  int max_id = -1;
  for (const Stmt* loop : Loops()) {
    max_id = std::max(max_id, loop->loop_id());
  }
  return max_id;
}

Kernel Kernel::Clone() const {
  Kernel k;
  k.name = name;
  k.pattern = pattern;
  k.scalars = scalars;
  k.buffers = buffers;
  k.task_loop_id = task_loop_id;
  if (body) k.body = body->Clone();
  return k;
}

void Kernel::Validate() const {
  if (name.empty()) throw MalformedInput("kernel has no name");
  if (!body) throw MalformedInput("kernel " + name + " has no body");

  std::set<std::string> buffer_names;
  for (const auto& b : buffers) {
    if (!b.element.is_primitive()) {
      throw MalformedInput("buffer " + b.name + " has non-primitive element " +
                           b.element.ToString());
    }
    if (b.length <= 0) {
      throw MalformedInput("buffer " + b.name + " has non-positive length");
    }
    if (!buffer_names.insert(b.name).second) {
      throw MalformedInput("duplicate buffer name " + b.name);
    }
  }

  std::set<int> loop_ids;
  for (const Stmt* loop : Loops()) {
    if (!loop_ids.insert(loop->loop_id()).second) {
      throw MalformedInput("duplicate loop id " +
                           std::to_string(loop->loop_id()) + " in kernel " +
                           name);
    }
  }
  if (task_loop_id >= 0 && loop_ids.count(task_loop_id) == 0) {
    throw MalformedInput("task loop id " + std::to_string(task_loop_id) +
                         " not present in kernel " + name);
  }

  // Every array reference must target a declared buffer.
  std::vector<std::string> errors;
  VisitStmt(body, std::function<void(const Stmt&)>([&](const Stmt& s) {
              auto check_expr = [&](const ExprPtr& e) {
                if (!e) return;
                VisitExpr(e, [&](const Expr& node) {
                  if (node.kind() == ExprKind::kArrayRef &&
                      FindBuffer(node.name()) == nullptr) {
                    errors.push_back("array reference to undeclared buffer " +
                                     node.name());
                  }
                });
              };
              switch (s.kind()) {
                case StmtKind::kAssign:
                  check_expr(s.lhs());
                  check_expr(s.rhs());
                  break;
                case StmtKind::kDecl:
                  check_expr(s.init());
                  break;
                case StmtKind::kIf:
                  check_expr(s.cond());
                  break;
                default:
                  break;
              }
            }));
  if (!errors.empty()) {
    throw MalformedInput("kernel " + name + ": " + errors.front());
  }
}

}  // namespace s2fa::kir
