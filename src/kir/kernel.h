// The kernel: a complete HLS-C translation unit in IR form.
//
// A Kernel is what the bytecode-to-C compiler emits (paper Code 3): flat
// scalar parameters, flat input/output buffers (the flattened composite
// types), local buffers (constant-size `new` lowered to static arrays), and
// a body whose outermost loop realizes the RDD transformation template.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kir/stmt.h"

namespace s2fa::kir {

enum class BufferKind {
  kInput,   // off-chip, read by the kernel
  kOutput,  // off-chip, written by the kernel
  kLocal,   // on-chip scratch (BRAM)
};

struct Buffer {
  std::string name;
  Type element;              // primitive element type
  std::int64_t length = 0;   // total elements (batch * per_task for args)
  BufferKind kind = BufferKind::kInput;

  // For kInput/kOutput: which flattened source field this buffer carries,
  // e.g. "in._1" — consumed by the Blaze serialization generator.
  std::string source_field;

  // Elements per task for interface buffers; 0 for locals.
  std::int64_t per_task = 0;

  // Off-chip interface bit-width chosen by the design point (0 = the
  // element's natural width). Set by the Merlin transform.
  int interface_bits = 0;

  std::int64_t byte_size() const {
    return length * (element.bit_width() / 8);
  }
};

struct ScalarParam {
  std::string name;
  Type type;
};

// The RDD transformation the kernel template realizes (paper §3.2).
enum class ParallelPattern { kMap, kReduce };

const char* PatternName(ParallelPattern pattern);

struct Kernel {
  std::string name;
  ParallelPattern pattern = ParallelPattern::kMap;
  std::vector<ScalarParam> scalars;   // e.g. the task count N
  std::vector<Buffer> buffers;
  StmtPtr body;                       // a Block

  // Loop id of the template-inserted outermost task loop (-1 if none).
  int task_loop_id = -1;

  const Buffer* FindBuffer(const std::string& name) const;
  std::vector<const Buffer*> InputBuffers() const;
  std::vector<const Buffer*> OutputBuffers() const;
  std::vector<const Buffer*> LocalBuffers() const;

  // All loops, pre-order.
  std::vector<Stmt*> Loops() { return CollectLoops(body); }
  std::vector<const Stmt*> Loops() const { return CollectLoops(body.get()); }

  // Largest loop id in the body (-1 when no loops); new transform-created
  // loops use ids above this.
  int MaxLoopId() const;

  // Deep copy (buffers/scalars copied, body cloned).
  Kernel Clone() const;

  // Structural sanity checks: body present, buffer names unique, every
  // ArrayRef targets a declared buffer, loop ids unique. Throws
  // MalformedInput on violation.
  void Validate() const;
};

}  // namespace s2fa::kir
