// The HLS estimator: s2fa's stand-in for Xilinx SDx synthesis (paper §3.2,
// Impediment 1).
//
// Given a Merlin-transformed kernel (loop pragmas + interface bit-widths),
// produces the quantities the DSE needs from a black-box HLS run:
//   * execution cycles for one accelerator invocation (whole batch),
//   * post-synthesis resource utilization (BRAM/DSP/FF/LUT),
//   * achieved clock frequency (degrades with congestion / deep unrolling),
//   * feasibility (resource cap, timing),
//   * a simulated synthesis wall-time ("minutes to an hour", §4.3.3) that
//     drives the DSE's exploration-time axis.
//
// The model is analytic but physically grounded: pipelined loops get
// II = max(recurrence II, memory-port II); unrolling replicates operators
// and pressures ports; off-chip throughput scales with interface bit-width;
// tree reduction breaks accumulation recurrences. These are exactly the
// landscape features the paper's DSE strategies are designed around.
#pragma once

#include <string>
#include <vector>

#include "hls/bottleneck.h"
#include "hls/device.h"
#include "kir/kernel.h"

namespace s2fa::hls {

struct Utilization {
  double bram = 0, dsp = 0, ff = 0, lut = 0;  // used (raw units)
  // Fractions of the device's raw totals.
  double bram_frac = 0, dsp_frac = 0, ff_frac = 0, lut_frac = 0;

  double MaxFraction() const;
};

struct HlsResult {
  bool feasible = true;
  std::string infeasible_reason;

  double cycles = 0;       // one invocation over the whole batch
  double freq_mhz = 0;     // achieved clock
  double exec_us = 0;      // cycles / freq
  Utilization util;
  double eval_minutes = 0; // simulated HLS synthesis wall time
  std::vector<std::string> notes;
  // What binds this design, recorded where the estimator took the decision
  // (dominant pipelined II, resource-cap argmax, frequency-slowdown split)
  // — never re-derived in a second pass. kNone when nothing binds.
  Bottleneck bottleneck;

  // Sanity check for results crossing a trust boundary (the real flow
  // treats the HLS tool as an unreliable oracle): a feasible result must
  // report positive finite cycles/frequency/latency, utilization fractions
  // in [0, 1], and a positive finite synthesis time; the bottleneck
  // attribution must carry finite numbers and, on an infeasible verdict,
  // blame the same resource/decision as infeasible_reason. The resilience
  // layer classifies implausible results as garbage rather than acting on
  // them.
  bool Plausible() const;
};

struct EstimatorOptions {
  DeviceModel device = DeviceModel::VU9P();

  // Fixed control/shell-adjacent overhead inside the usable region.
  double base_lut = 5000, base_ff = 8000, base_bram = 16;

  // Frequency model coefficients (see hls::EstimateHls implementation).
  double lut_congestion_knee = 0.25;
  double lut_congestion_slope = 0.9;
  double ff_congestion_knee = 0.30;
  double ff_congestion_slope = 0.5;
  double unroll_slowdown = 0.018;      // x log2(max parallel factor)
  // Routing-complexity wall: slowdown += (max_parallel/knee)^power. The
  // paper: "coarse-grained parallelism with factor 256 ... might be
  // infeasible for most designs due to high routing complexity, but it
  // could be an optimal choice for certain designs" (4.3.2).
  double routing_knee = 256.0;
  double routing_power = 1.5;
  double wavefront_slowdown = 1.3;     // unrolled buffer-carried recurrence
  double min_feasible_mhz = 60.0;

  // Attribution thresholds for *feasible* designs: a clock below
  // freq_attr_fraction * target blames the frequency model, and a max
  // utilization above near_cap_fraction * usable cap blames that resource
  // when nothing else binds first.
  double freq_attr_fraction = 0.8;
  double near_cap_fraction = 0.9;

  // Synthesis-time model: minutes = a + b * sqrt(spatial kops) (+/- 25%
  // deterministic jitter), clamped to [min, max].
  double synth_base_min = 2.0;
  double synth_scale = 0.55;
  double synth_min = 1.5;
  double synth_max = 45.0;
};

// Estimates a transformed kernel. The kernel must validate.
HlsResult EstimateHls(const kir::Kernel& kernel,
                      const EstimatorOptions& options = {});

}  // namespace s2fa::hls
