#include "hls/device.h"

#include "support/error.h"

namespace s2fa::hls {

namespace {

using kir::BinaryOp;
using kir::Type;
using kir::TypeKind;

bool IsDouble(const Type& t) { return t.kind() == TypeKind::kDouble; }

// Integer operator widths scale with the element width (LUT-carry adders).
double IntWidth(const Type& t) {
  return t.is_integral() ? static_cast<double>(t.bit_width()) : 32.0;
}

}  // namespace

OpCost BinaryOpCost(BinaryOp op, const Type& type) {
  const bool fp = type.is_floating();
  const bool dbl = IsDouble(type);
  if (kir::IsComparison(op) || op == BinaryOp::kLAnd ||
      op == BinaryOp::kLOr) {
    if (fp) return {2, 0, 100, dbl ? 180.0 : 100.0};
    double w = IntWidth(type);
    return {1, 0, w, w};
  }
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      if (fp) {
        return dbl ? OpCost{13, 3, 700, 650} : OpCost{7, 2, 350, 300};
      }
      return {1, 0, IntWidth(type), IntWidth(type)};
    case BinaryOp::kMul:
      if (fp) {
        return dbl ? OpCost{9, 11, 550, 300} : OpCost{5, 3, 250, 150};
      }
      // 32x32 int multiply: 3 DSP48s.
      return {3, type.bit_width() > 32 ? 12.0 : 3.0, 150, 80};
    case BinaryOp::kDiv:
    case BinaryOp::kRem:
      if (fp) {
        return dbl ? OpCost{40, 0, 1800, 1600} : OpCost{28, 0, 850, 750};
      }
      return {35, 0, 900, 1000};
    case BinaryOp::kShl:
    case BinaryOp::kShr:
    case BinaryOp::kUShr:
      return {1, 0, IntWidth(type), IntWidth(type) * 1.5};
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
    case BinaryOp::kXor:
      return {1, 0, IntWidth(type) / 2, IntWidth(type)};
    case BinaryOp::kMin:
    case BinaryOp::kMax:
      if (fp) {
        return dbl ? OpCost{3, 0, 250, 300} : OpCost{2, 0, 150, 180};
      }
      return {1, 0, IntWidth(type), IntWidth(type) * 2};
    default:
      S2FA_UNREACHABLE("unhandled binary op in operator library");
  }
}

OpCost UnaryOpCost(kir::UnaryOp op, const Type& type) {
  (void)op;
  if (type.is_floating()) return {1, 0, 40, 40};  // sign flip
  return {1, 0, IntWidth(type), IntWidth(type)};
}

OpCost IntrinsicCost(kir::Intrinsic fn, const Type& type) {
  const bool dbl = IsDouble(type);
  switch (fn) {
    case kir::Intrinsic::kExp:
    case kir::Intrinsic::kLog:
      return dbl ? OpCost{26, 26, 2600, 3000} : OpCost{20, 7, 1200, 1500};
    case kir::Intrinsic::kPow:
      // exp(log(x)*y): two cores plus a multiplier.
      return dbl ? OpCost{58, 60, 5500, 6000} : OpCost{45, 17, 2700, 3200};
    case kir::Intrinsic::kSqrt:
      return dbl ? OpCost{28, 0, 1200, 1100} : OpCost{16, 0, 600, 550};
    case kir::Intrinsic::kAbs:
      return {1, 0, 40, 40};
  }
  S2FA_UNREACHABLE("bad intrinsic");
}

OpCost CastCost(const Type& from, const Type& to) {
  const bool fp_involved = from.is_floating() || to.is_floating();
  if (fp_involved) return {4, 0, 200, 200};  // fp convert core
  return {1, 0, 0, IntWidth(to) / 2};        // resize wires
}

}  // namespace s2fa::hls
