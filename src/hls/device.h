// FPGA device and operator-library models.
//
// The evaluation platform of the paper is an AWS F1 (f1.2xlarge) with one
// Xilinx Virtex UltraScale+ VU9P. The device model carries that part's
// resource totals and the paper's 75% usable cap (§5.2 footnote 5: the rest
// is vendor shell logic). The operator library holds per-operation
// latency/resource costs representative of Xilinx HLS cores at the 250 MHz
// target.
#pragma once

#include <string>

#include "kir/expr.h"

namespace s2fa::hls {

struct DeviceModel {
  std::string name = "xcvu9p-flgb2104";
  // Raw totals for the VU9P (18Kb BRAM blocks).
  double bram_18k = 4320;
  double dsp = 6840;
  double ff = 2364480;
  double lut = 1182240;
  // Fraction usable by the accelerator (paper: 75%, rest is shell).
  double usable_fraction = 0.75;
  // Synthesis target clock.
  double target_mhz = 250.0;

  static DeviceModel VU9P() { return DeviceModel{}; }
};

// Cost of one hardware operator instance.
struct OpCost {
  double latency = 1;  // pipeline depth in cycles at the target clock
  double dsp = 0;
  double ff = 0;
  double lut = 0;
};

// Operator library lookups. `type` selects the precision/width variant.
OpCost BinaryOpCost(kir::BinaryOp op, const kir::Type& type);
OpCost UnaryOpCost(kir::UnaryOp op, const kir::Type& type);
OpCost IntrinsicCost(kir::Intrinsic fn, const kir::Type& type);
OpCost CastCost(const kir::Type& from, const kir::Type& to);

// Memory access latencies (cycles).
inline constexpr double kLocalReadLatency = 2;   // BRAM read
inline constexpr double kLocalWriteLatency = 1;
inline constexpr double kAxiReadLatency = 3;     // burst FIFO pop
inline constexpr double kAxiWriteLatency = 1;

}  // namespace s2fa::hls
