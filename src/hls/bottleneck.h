// Structured bottleneck attribution for HLS estimates.
//
// The estimator already takes every max/cap decision that makes a design
// slow or infeasible — recurrence II vs memory-port II, local ports vs AXI
// width, the per-resource usable cap, congestion vs the routing wall. This
// header names those decisions so a single attribution can ride along with
// the result and downstream consumers (the bottleneck-guided DSE arm, the
// journal) can act on *why* instead of re-deriving it. Header-only so the
// tuner can speak the vocabulary without linking the estimator.
#pragma once

#include <optional>
#include <string>

namespace s2fa::hls {

enum class BottleneckKind {
  kNone = 0,        // nothing binds: the design is balanced
  kRecurrenceII,    // pipelined II bound by a carried dependence chain
  kMemoryPortII,    // pipelined II bound by local-buffer port conflicts
  kAxiBandwidth,    // pipelined II bound by off-chip interface width
  kBramCap,         // BRAM utilization at/over the usable cap
  kDspCap,          // DSP utilization at/over the usable cap
  kFfCap,           // FF utilization at/over the usable cap
  kLutCap,          // LUT utilization at/over the usable cap
  kFreqCongestion,  // clock degraded by LUT/FF congestion or fan-out
  kRoutingWall,     // clock degraded by the parallelism routing wall
};

// One attribution: the decision that binds, the value it bound at, and how
// decisively it won. `quantity` is in the decision's own units (an II in
// cycles, a utilization fraction, a frequency-slowdown factor); `margin` is
// the gap to the runner-up at the same decision (or the cap overshoot for
// resource kinds), so a near-tie can be told apart from a clear verdict.
struct Bottleneck {
  BottleneckKind kind = BottleneckKind::kNone;
  double quantity = 0;
  double margin = 0;
};

inline const char* BottleneckKindName(BottleneckKind kind) {
  switch (kind) {
    case BottleneckKind::kNone: return "none";
    case BottleneckKind::kRecurrenceII: return "recurrence_ii";
    case BottleneckKind::kMemoryPortII: return "memory_port_ii";
    case BottleneckKind::kAxiBandwidth: return "axi_bandwidth";
    case BottleneckKind::kBramCap: return "bram_cap";
    case BottleneckKind::kDspCap: return "dsp_cap";
    case BottleneckKind::kFfCap: return "ff_cap";
    case BottleneckKind::kLutCap: return "lut_cap";
    case BottleneckKind::kFreqCongestion: return "freq_congestion";
    case BottleneckKind::kRoutingWall: return "routing_wall";
  }
  return "none";
}

inline bool IsResourceCapKind(BottleneckKind kind) {
  return kind == BottleneckKind::kBramCap ||
         kind == BottleneckKind::kDspCap ||
         kind == BottleneckKind::kFfCap || kind == BottleneckKind::kLutCap;
}

// The resource a cap kind blames ("" for non-cap kinds) — the word the
// estimator's infeasible_reason must contain for the verdict to be
// internally consistent (HlsResult::Plausible checks this).
inline const char* BottleneckCapResource(BottleneckKind kind) {
  switch (kind) {
    case BottleneckKind::kBramCap: return "bram";
    case BottleneckKind::kDspCap: return "dsp";
    case BottleneckKind::kFfCap: return "ff";
    case BottleneckKind::kLutCap: return "lut";
    default: return "";
  }
}

inline std::optional<BottleneckKind> BottleneckKindFromName(
    const std::string& name) {
  const BottleneckKind kinds[] = {
      BottleneckKind::kNone,          BottleneckKind::kRecurrenceII,
      BottleneckKind::kMemoryPortII,  BottleneckKind::kAxiBandwidth,
      BottleneckKind::kBramCap,       BottleneckKind::kDspCap,
      BottleneckKind::kFfCap,         BottleneckKind::kLutCap,
      BottleneckKind::kFreqCongestion, BottleneckKind::kRoutingWall,
  };
  for (BottleneckKind kind : kinds) {
    if (name == BottleneckKindName(kind)) return kind;
  }
  return std::nullopt;
}

}  // namespace s2fa::hls
