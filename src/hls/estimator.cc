#include "hls/estimator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "kir/analysis.h"
#include "merlin/transform.h"
#include "obs/obs.h"
#include "support/error.h"

namespace s2fa::hls {

namespace {

using kir::Buffer;
using kir::BufferKind;
using kir::Expr;
using kir::ExprKind;
using kir::ExprPtr;
using kir::Stmt;
using kir::StmtKind;
using kir::StmtPtr;

constexpr double kBramBits = 18432;  // one BRAM18K block

double Log2Ceil(double v) { return v <= 1 ? 0 : std::ceil(std::log2(v)); }

// Latency of `op` without charging resources (for recurrence-cycle math).
double NodeLatency(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kBinary:
      return BinaryOpCost(e.binary_op(), e.operands()[0]->type()).latency;
    case ExprKind::kUnary:
      return UnaryOpCost(e.unary_op(), e.operands()[0]->type()).latency;
    case ExprKind::kCall:
      return IntrinsicCost(e.intrinsic(), e.type()).latency;
    case ExprKind::kCast:
      return CastCost(e.operands()[0]->type(), e.type()).latency;
    case ExprKind::kSelect:
      return 1;
    default:
      return 0;
  }
}

// Latency along the path from a carried value (scalar or buffer) to the
// root of `expr` — the length of the dependence cycle through this
// expression. Returns -1 when the subtree does not touch a carrier.
double CarriedPathLatency(const ExprPtr& expr,
                          const std::vector<std::string>& carriers,
                          const kir::Kernel& k) {
  const Expr& e = *expr;
  if (e.kind() == ExprKind::kVar) {
    for (const auto& c : carriers) {
      if (e.name() == c) return 0;
    }
    return -1;
  }
  if (e.kind() == ExprKind::kArrayRef) {
    bool carried_buffer = false;
    for (const auto& c : carriers) {
      if (e.name() == c) carried_buffer = true;
    }
    if (carried_buffer) {
      const Buffer* buf = k.FindBuffer(e.name());
      return (buf != nullptr && buf->kind == BufferKind::kLocal)
                 ? kLocalReadLatency
                 : kAxiReadLatency;
    }
    // An index depending on a carried value would also cycle, but such
    // indirect recurrences do not occur in the supported kernel forms.
    return -1;
  }
  double path = -1;
  for (const auto& op : e.operands()) {
    path = std::max(path, CarriedPathLatency(op, carriers, k));
  }
  if (path < 0) return -1;
  return path + NodeLatency(e);
}

class Estimator {
 public:
  Estimator(const kir::Kernel& kernel, const EstimatorOptions& options)
      : k_(kernel), opt_(options) {}

  HlsResult Run();

 private:
  // Effective unroll of a loop, clamped to its trip count.
  static std::int64_t UnrollOf(const Stmt& loop) {
    return std::min<std::int64_t>(merlin::ParallelFactorOf(loop),
                                  loop.trip_count());
  }

  // Whether the loop is effectively fully unrolled (acts as straight-line).
  static bool FullyUnrolled(const Stmt& loop) {
    return UnrollOf(loop) >= loop.trip_count();
  }

  // Critical-path latency of an expression; charges operator resources
  // (replicated `repl` times) on first traversal of each instance.
  double ExprLatency(const ExprPtr& expr, double repl);

  // Latency of one execution of `stmt`; charges resources. `scale` is how
  // many times this statement executes per invocation (the product of
  // enclosing sequential iteration counts) — it never affects the latency
  // or the charged resources, only how much weight an II decision taken
  // here carries in the whole-kernel bottleneck attribution.
  double StmtLatency(const Stmt& stmt, double repl, double scale);

  double LoopLatency(const Stmt& loop, double repl, double scale);

  void Charge(const OpCost& cost, double repl) {
    dsp_ += cost.dsp * repl;
    ff_ += cost.ff * repl;
    lut_ += cost.lut * repl;
  }

  // Memory-port initiation interval for a pipelined loop issuing `u`
  // logical iterations per initiation, whose per-iteration body census is
  // `counts` (inner fully-unrolled loops already weighted). Reports which
  // bound set the II — local ports or off-chip width — right where the
  // max is taken (kNone when neither exceeds II 1).
  struct MemIi {
    double ii = 1;
    BottleneckKind kind = BottleneckKind::kNone;
  };
  MemIi MemoryII(const kir::OpCounts& counts, double u);

  // Partition factor chosen by Merlin for a local buffer: the largest
  // unroll among loops whose bodies access it.
  std::int64_t PartitionOf(const std::string& buffer) const;

  void PrecomputePartitions();

  const kir::Kernel& k_;
  EstimatorOptions opt_;
  double dsp_ = 0, ff_ = 0, lut_ = 0, bram_ = 0;
  std::map<std::string, std::int64_t> partition_;
  double max_parallel_ = 1;
  bool unrolled_wavefront_ = false;
  // Champion II decision across all pipelined loops, weighted by the stall
  // cycles it costs the whole invocation (scale * II * (iters - 1)).
  Bottleneck ii_bottleneck_;
  double ii_weight_ = 0;
  std::vector<std::string> notes_;
};

double Estimator::ExprLatency(const ExprPtr& expr, double repl) {
  const Expr& e = *expr;
  double operand_lat = 0;
  for (const auto& op : e.operands()) {
    operand_lat = std::max(operand_lat, ExprLatency(op, repl));
  }
  switch (e.kind()) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kVar:
      return operand_lat;
    case ExprKind::kArrayRef: {
      const Buffer* buf = k_.FindBuffer(e.name());
      S2FA_CHECK(buf != nullptr, "unknown buffer " << e.name());
      const double lat = buf->kind == BufferKind::kLocal ? kLocalReadLatency
                                                         : kAxiReadLatency;
      return operand_lat + lat;
    }
    case ExprKind::kBinary: {
      OpCost cost = BinaryOpCost(e.binary_op(), e.operands()[0]->type());
      // Integer multiplication by a compile-time constant strength-reduces
      // to shift/add LUT logic -- no DSP block.
      if (e.binary_op() == kir::BinaryOp::kMul &&
          !e.operands()[0]->type().is_floating() &&
          (e.operands()[0]->kind() == ExprKind::kIntLit ||
           e.operands()[1]->kind() == ExprKind::kIntLit)) {
        // The shift/add network is sized by the variable operand; the
        // literal only selects which shifts are wired in.
        const ExprPtr& variable_side =
            e.operands()[0]->kind() == ExprKind::kIntLit ? e.operands()[1]
                                                         : e.operands()[0];
        double w = variable_side->type().bit_width();
        cost = OpCost{1, 0, w, 2 * w};
      }
      Charge(cost, repl);
      return operand_lat + cost.latency;
    }
    case ExprKind::kUnary: {
      OpCost cost = UnaryOpCost(e.unary_op(), e.operands()[0]->type());
      Charge(cost, repl);
      return operand_lat + cost.latency;
    }
    case ExprKind::kCall: {
      OpCost cost = IntrinsicCost(e.intrinsic(), e.type());
      Charge(cost, repl);
      return operand_lat + cost.latency;
    }
    case ExprKind::kCast: {
      OpCost cost = CastCost(e.operands()[0]->type(), e.type());
      Charge(cost, repl);
      return operand_lat + cost.latency;
    }
    case ExprKind::kSelect: {
      Charge({1, 0, 32, 32}, repl);  // mux
      return operand_lat + 1;
    }
  }
  S2FA_UNREACHABLE("bad expr kind");
}

double Estimator::StmtLatency(const Stmt& stmt, double repl, double scale) {
  switch (stmt.kind()) {
    case StmtKind::kAssign: {
      double lat = ExprLatency(stmt.rhs(), repl);
      if (stmt.lhs()->kind() == ExprKind::kArrayRef) {
        lat = std::max(lat, ExprLatency(stmt.lhs()->operands()[0], repl));
        const Buffer* buf = k_.FindBuffer(stmt.lhs()->name());
        S2FA_CHECK(buf != nullptr, "unknown buffer " << stmt.lhs()->name());
        lat += buf->kind == BufferKind::kLocal ? kLocalWriteLatency
                                               : kAxiWriteLatency;
      }
      return std::max(1.0, lat);
    }
    case StmtKind::kDecl:
      return stmt.init() ? std::max(1.0, ExprLatency(stmt.init(), repl))
                         : 0.0;
    case StmtKind::kIf: {
      double cond = ExprLatency(stmt.cond(), repl);
      double then_lat = StmtLatency(*stmt.then_stmt(), repl, scale);
      double else_lat =
          stmt.else_stmt() ? StmtLatency(*stmt.else_stmt(), repl, scale)
                           : 0.0;
      Charge({1, 0, 16, 24}, repl);  // branch select
      return cond + std::max(then_lat, else_lat) + 1;
    }
    case StmtKind::kFor:
      return LoopLatency(stmt, repl, scale);
    case StmtKind::kBlock: {
      double total = 0;
      for (const auto& st : stmt.stmts()) {
        total += StmtLatency(*st, repl, scale);
      }
      return total;
    }
  }
  S2FA_UNREACHABLE("bad stmt kind");
}

std::int64_t Estimator::PartitionOf(const std::string& buffer) const {
  auto it = partition_.find(buffer);
  return it == partition_.end() ? 1 : std::max<std::int64_t>(1, it->second);
}

void Estimator::PrecomputePartitions() {
  for (const Stmt* loop : k_.Loops()) {
    const std::int64_t u = UnrollOf(*loop);
    if (u <= 1) continue;
    kir::OpCounts counts = kir::CountTotalOps(*loop->body());
    auto bump = [&](const std::string& name) {
      const Buffer* buf = k_.FindBuffer(name);
      if (buf != nullptr && buf->kind == BufferKind::kLocal) {
        partition_[name] = std::max(partition_[name],
                                    std::min<std::int64_t>(u, buf->length));
      }
    };
    for (const auto& [name, n] : counts.buffer_reads) bump(name);
    for (const auto& [name, n] : counts.buffer_writes) bump(name);
  }
}

Estimator::MemIi Estimator::MemoryII(const kir::OpCounts& counts, double u) {
  double port_ii = 1, axi_ii = 1;
  // Local buffers: dual-ported BRAM, one partition set per Merlin config.
  for (const auto& [name, n] : counts.buffer_reads) {
    const Buffer* buf = k_.FindBuffer(name);
    if (buf == nullptr) continue;
    double writes = 0;
    auto w = counts.buffer_writes.find(name);
    if (w != counts.buffer_writes.end()) writes = w->second;
    if (buf->kind == BufferKind::kLocal) {
      double ports = 2.0 * static_cast<double>(PartitionOf(name));
      port_ii = std::max(port_ii, std::ceil(u * (n + writes) / ports));
    } else {
      const double bits = u * n * buf->element.bit_width();
      const double width = buf->interface_bits > 0
                               ? buf->interface_bits
                               : buf->element.bit_width();
      axi_ii = std::max(axi_ii, std::ceil(bits / width));
    }
  }
  // Write-only buffers not covered above.
  for (const auto& [name, n] : counts.buffer_writes) {
    if (counts.buffer_reads.count(name) != 0) continue;
    const Buffer* buf = k_.FindBuffer(name);
    if (buf == nullptr) continue;
    if (buf->kind == BufferKind::kLocal) {
      double ports = 2.0 * static_cast<double>(PartitionOf(name));
      port_ii = std::max(port_ii, std::ceil(u * n / ports));
    } else {
      const double bits = u * n * buf->element.bit_width();
      const double width = buf->interface_bits > 0
                               ? buf->interface_bits
                               : buf->element.bit_width();
      axi_ii = std::max(axi_ii, std::ceil(bits / width));
    }
  }
  MemIi result;
  result.ii = std::max(port_ii, axi_ii);
  if (result.ii > 1) {
    result.kind = port_ii >= axi_ii ? BottleneckKind::kMemoryPortII
                                    : BottleneckKind::kAxiBandwidth;
  }
  return result;
}

double Estimator::LoopLatency(const Stmt& loop, double repl, double scale) {
  const std::int64_t trip = loop.trip_count();
  const std::int64_t u = UnrollOf(loop);
  const double iters = std::ceil(static_cast<double>(trip) /
                                 static_cast<double>(u));
  max_parallel_ = std::max(max_parallel_, static_cast<double>(u));

  merlin::PipelineMode pipe = merlin::PipelineModeOf(loop);
  const bool tree = merlin::HasTreeReduction(loop);

  // Sub-loops that are not fully unrolled block pipelining of this loop.
  bool has_live_subloop = false;
  kir::VisitStmt(loop.body(), std::function<void(const Stmt&)>(
                                  [&](const Stmt& s) {
                                    if (s.kind() == StmtKind::kFor &&
                                        !FullyUnrolled(s)) {
                                      has_live_subloop = true;
                                    }
                                  }));

  const double body_lat =
      StmtLatency(*loop.body(), repl * static_cast<double>(u),
                  scale * iters);

  kir::LoopRecurrence rec = kir::AnalyzeRecurrence(loop);
  if (rec.carried) {
    bool buffer_carried = false;
    for (const auto& carrier : rec.carriers) {
      if (k_.FindBuffer(carrier) != nullptr) buffer_carried = true;
    }
    if (buffer_carried && u > 16) unrolled_wavefront_ = true;
  }

  if (pipe != merlin::PipelineMode::kOff && !has_live_subloop) {
    // Pipelined: II from the carried recurrence and from memory ports.
    double ii_rec = 1;
    if (rec.carried && !tree) {
      for (const auto& cycle : rec.cycle_exprs) {
        ii_rec = std::max(ii_rec,
                          CarriedPathLatency(cycle, rec.carriers, k_));
      }
      // A serial chain cannot be widened: unrolling packs u dependent
      // updates into each initiation, so the recurrence II scales with u.
      ii_rec *= static_cast<double>(u);
    }
    kir::OpCounts counts = kir::CountTotalOps(*loop.body());
    const MemIi mem = MemoryII(counts, static_cast<double>(u));
    const double ii = std::max({1.0, ii_rec, mem.ii});
    // This is where the II decision is taken: remember the binding bound
    // when the stall it costs the whole invocation beats the champion.
    const double stall_weight = scale * ii * (iters - 1);
    if (ii > 1 && stall_weight > ii_weight_) {
      ii_weight_ = stall_weight;
      ii_bottleneck_.kind = ii_rec >= mem.ii ? BottleneckKind::kRecurrenceII
                                             : mem.kind;
      ii_bottleneck_.quantity = ii;
      ii_bottleneck_.margin = ii - std::max(1.0, std::min(ii_rec, mem.ii));
    }
    double lat = body_lat + ii * (iters - 1) + 2;
    if (tree && u > 1) {
      // Balanced partial-sum combine after the loop drains.
      OpCost add = BinaryOpCost(kir::BinaryOp::kAdd, kir::Type::Float());
      lat += Log2Ceil(static_cast<double>(u)) * add.latency;
      Charge({0, 0, 32.0 * static_cast<double>(u),
              16.0 * static_cast<double>(u)},
             repl);  // partial-sum registers
    }
    return lat;
  }

  if (pipe != merlin::PipelineMode::kOff && has_live_subloop) {
    notes_.push_back("L" + std::to_string(loop.loop_id()) +
                     ": pipeline ignored (live sub-loops; use flatten)");
  }
  // Sequential execution: per-iteration body + loop control.
  return iters * (body_lat + 1) + 1;
}

HlsResult Estimator::Run() {
  k_.Validate();
  HlsResult result;

  PrecomputePartitions();

  // Base control logic.
  lut_ += opt_.base_lut;
  ff_ += opt_.base_ff;
  bram_ += opt_.base_bram;

  // Interface logic per off-chip buffer: AXI master + burst buffer sized by
  // the interface width.
  for (const auto& buf : k_.buffers) {
    if (buf.kind == BufferKind::kLocal) {
      const double bits = static_cast<double>(buf.length) *
                          buf.element.bit_width();
      const double parts = static_cast<double>(PartitionOf(buf.name));
      bram_ += parts * std::max(1.0, std::ceil(bits / parts / kBramBits));
      lut_ += 50 + 10 * parts;  // banking mux
      continue;
    }
    const double width = buf.interface_bits > 0 ? buf.interface_bits
                                                : buf.element.bit_width();
    lut_ += 800 + width;
    ff_ += 1000 + 2 * width;
    // Merlin stages each interface buffer on chip and double-buffers it to
    // overlap bursts with compute.
    const double stage_bits = static_cast<double>(buf.length) *
                              buf.element.bit_width();
    bram_ += 2.0 * std::max(1.0, std::ceil(stage_bits / kBramBits));
  }

  const double cycles = StmtLatency(*k_.body, 1.0, 1.0);

  const DeviceModel& dev = opt_.device;
  result.util.bram = bram_;
  result.util.dsp = dsp_;
  result.util.ff = ff_;
  result.util.lut = lut_;
  result.util.bram_frac = bram_ / dev.bram_18k;
  result.util.dsp_frac = dsp_ / dev.dsp;
  result.util.ff_frac = ff_ / dev.ff;
  result.util.lut_frac = lut_ / dev.lut;

  // Frequency model: congestion + broadcast fan-out of wide unrolls + deep
  // combinational ripple of unrolled wavefronts. The terms are kept apart
  // so a timing verdict can blame the side that dominated — congestion
  // (LUT/FF pressure, fan-out) vs the parallelism routing wall (which the
  // wavefront ripple belongs to: both are cured by backing parallelism
  // off).
  const double congestion_term =
      opt_.lut_congestion_slope *
          std::max(0.0, result.util.lut_frac - opt_.lut_congestion_knee) +
      opt_.ff_congestion_slope *
          std::max(0.0, result.util.ff_frac - opt_.ff_congestion_knee) +
      opt_.unroll_slowdown * Log2Ceil(max_parallel_);
  double routing_term =
      std::pow(max_parallel_ / opt_.routing_knee, opt_.routing_power);
  if (unrolled_wavefront_) routing_term += opt_.wavefront_slowdown;
  const double slowdown = 1.0 + congestion_term + routing_term;
  double freq = dev.target_mhz / slowdown;
  freq = std::floor(freq / 10.0) * 10.0;  // P&R granularity
  freq = std::min(freq, dev.target_mhz);
  auto freq_bottleneck = [&] {
    Bottleneck b;
    b.kind = routing_term >= congestion_term ? BottleneckKind::kRoutingWall
                                             : BottleneckKind::kFreqCongestion;
    b.quantity = slowdown;
    b.margin = std::abs(routing_term - congestion_term);
    return b;
  };

  result.cycles = cycles;
  result.freq_mhz = freq;
  result.exec_us = cycles / freq;  // cycles / (MHz) = microseconds
  result.notes = notes_;

  // Feasibility: the paper caps usable resources at 75% and treats designs
  // the tool cannot place/route in time as failures. A resource verdict
  // names the binding resource, and the bottleneck attribution is taken at
  // the very same argmax (Plausible() holds the two to each other).
  const double cap = dev.usable_fraction;
  struct ResFrac {
    BottleneckKind kind;
    double frac;
  };
  const ResFrac fracs[] = {
      {BottleneckKind::kBramCap, result.util.bram_frac},
      {BottleneckKind::kDspCap, result.util.dsp_frac},
      {BottleneckKind::kFfCap, result.util.ff_frac},
      {BottleneckKind::kLutCap, result.util.lut_frac},
  };
  std::size_t max_res = 0, second_res = 1;
  for (std::size_t i = 1; i < 4; ++i) {
    if (fracs[i].frac > fracs[max_res].frac) {
      second_res = max_res;
      max_res = i;
    } else if (fracs[i].frac > fracs[second_res].frac || second_res == max_res) {
      second_res = i;
    }
  }
  auto cap_bottleneck = [&] {
    Bottleneck b;
    b.kind = fracs[max_res].kind;
    b.quantity = fracs[max_res].frac;
    b.margin = fracs[max_res].frac - fracs[second_res].frac;
    return b;
  };
  if (fracs[max_res].frac > cap) {
    result.feasible = false;
    result.infeasible_reason =
        std::string(BottleneckCapResource(fracs[max_res].kind)) +
        " utilization exceeds the usable cap";
    result.bottleneck = cap_bottleneck();
  } else if (freq < opt_.min_feasible_mhz) {
    result.feasible = false;
    result.infeasible_reason = "timing closure failed";
    result.bottleneck = freq_bottleneck();
  } else if (freq < opt_.freq_attr_fraction * dev.target_mhz) {
    // Feasible but clock-bound: the slowdown dominates before any II does.
    result.bottleneck = freq_bottleneck();
  } else if (ii_bottleneck_.kind != BottleneckKind::kNone) {
    result.bottleneck = ii_bottleneck_;
  } else if (fracs[max_res].frac >= opt_.near_cap_fraction * cap) {
    result.bottleneck = cap_bottleneck();
  }

  // Simulated synthesis wall time: grows with spatial complexity; jitter is
  // a deterministic hash of the design so reruns agree.
  const double spatial_kops = (dsp_ * 8 + lut_ / 64.0) / 1000.0;
  double minutes = opt_.synth_base_min +
                   opt_.synth_scale * std::sqrt(std::max(0.0, spatial_kops));
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(cycles));
  mix(static_cast<std::uint64_t>(lut_));
  mix(static_cast<std::uint64_t>(max_parallel_));
  const double jitter =
      0.75 + 0.5 * (static_cast<double>(h % 10000) / 10000.0);
  minutes = std::clamp(minutes * jitter, opt_.synth_min, opt_.synth_max);
  result.eval_minutes = minutes;

  return result;
}

}  // namespace

double Utilization::MaxFraction() const {
  return std::max(std::max(bram_frac, dsp_frac), std::max(ff_frac, lut_frac));
}

bool HlsResult::Plausible() const {
  auto positive_finite = [](double v) { return std::isfinite(v) && v > 0; };
  if (!positive_finite(eval_minutes)) return false;
  // The attribution must carry sane numbers whenever it is set, and an
  // infeasible verdict must blame the same decision its reason names —
  // a tool that reports "bram ... exceeds the usable cap" while attributing
  // the failure to DSPs is talking nonsense.
  if (!std::isfinite(bottleneck.quantity) || bottleneck.quantity < 0 ||
      !std::isfinite(bottleneck.margin)) {
    return false;
  }
  if (!feasible) {  // an infeasible verdict carries no performance numbers
    if (infeasible_reason.find("utilization exceeds") != std::string::npos) {
      const char* resource = BottleneckCapResource(bottleneck.kind);
      if (resource[0] == '\0' ||
          infeasible_reason.find(resource) == std::string::npos) {
        return false;
      }
    } else if (infeasible_reason.find("timing closure") !=
               std::string::npos) {
      if (bottleneck.kind != BottleneckKind::kFreqCongestion &&
          bottleneck.kind != BottleneckKind::kRoutingWall) {
        return false;
      }
    }
    return true;
  }
  if (!positive_finite(cycles) || !positive_finite(freq_mhz) ||
      !positive_finite(exec_us)) {
    return false;
  }
  const double fracs[] = {util.bram_frac, util.dsp_frac, util.ff_frac,
                          util.lut_frac};
  for (double f : fracs) {
    if (!(f >= 0 && f <= 1.0) || std::isnan(f)) return false;
  }
  return true;
}

HlsResult EstimateHls(const kir::Kernel& kernel,
                      const EstimatorOptions& options) {
  S2FA_SPAN("hls.estimate");
  HlsResult result = Estimator(kernel, options).Run();
  S2FA_COUNT("hls.estimates", 1);
  if (!result.feasible) S2FA_COUNT("hls.infeasible", 1);
  S2FA_OBSERVE("hls.eval_minutes", result.eval_minutes);
  return result;
}

}  // namespace s2fa::hls
