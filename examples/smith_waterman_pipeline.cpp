// Smith-Waterman end to end: the paper's motivating example (Code 1/2).
//
// A Spark job maps the S-W scoring kernel over a dataset of DNA sequence
// pairs. This example builds the accelerator with the full S2FA flow,
// registers it with the Blaze runtime under the id "SW_kernel" (as in the
// paper's Code 1), runs the dataset both on the modeled JVM and through
// the accelerator, checks the results agree, and reports the speedup.
//
//   build/examples/smith_waterman_pipeline
#include <cstdio>

#include "apps/app.h"
#include "apps/jvm_baseline.h"
#include "blaze/runtime.h"
#include "s2fa/framework.h"

using namespace s2fa;

int main() {
  apps::App app = apps::FindApp("S-W");

  // Build the accelerator (moderate DSE budget for the demo).
  FrameworkOptions options;
  options.dse.time_limit_minutes = 120;
  options.dse.num_cores = 8;
  options.dse.seed = 7;
  Artifact artifact = BuildAccelerator(*app.pool, app.spec, options);
  std::printf("S-W accelerator: %.0f cycles @ %.0f MHz, "
              "%zu design points explored\n",
              artifact.best_hls.cycles, artifact.best_hls.freq_mhz,
              artifact.exploration.evaluations);

  blaze::BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "SW_kernel", artifact);

  // A dataset of 128 random DNA pairs (deterministic).
  Rng rng(123);
  blaze::Dataset pairs = app.make_input(128, rng);

  // JVM baseline: the original Scala lambda interpreted per record.
  apps::JvmRunResult jvm = apps::RunOnJvm(app, pairs, nullptr);

  // Accelerated path: blaze.wrap(pairs).map(new SW) in the paper's terms.
  blaze::ExecutionStats stats;
  blaze::Dataset scores = runtime.Map("SW_kernel", pairs, nullptr, &stats);

  // Functional check: both paths must produce identical scores.
  std::size_t mismatches = 0;
  for (std::size_t r = 0; r < scores.num_records(); ++r) {
    if (scores.ColumnByField("score").data[r].AsInt() !=
        jvm.output.ColumnByField("score").data[r].AsInt()) {
      ++mismatches;
    }
  }
  std::printf("records: %zu  mismatches: %zu\n", scores.num_records(),
              mismatches);
  std::printf("sample scores: %d %d %d %d\n",
              scores.ColumnByField("score").data[0].AsInt(),
              scores.ColumnByField("score").data[1].AsInt(),
              scores.ColumnByField("score").data[2].AsInt(),
              scores.ColumnByField("score").data[3].AsInt());

  const double jvm_us = jvm.total_ns / 1000.0;
  std::printf("JVM (single thread, modeled): %.1f ms\n", jvm_us / 1000.0);
  std::printf("FPGA via Blaze:               %.3f ms "
              "(compute %.1f%%, transfer %.1f%%, overhead %.1f%%)\n",
              stats.total_us / 1000.0,
              100.0 * stats.compute_us / stats.total_us,
              100.0 * stats.transfer_us / stats.total_us,
              100.0 * (stats.overhead_us + stats.serialize_us) /
                  stats.total_us);
  std::printf("speedup: %.1fx\n", jvm_us / stats.total_us);
  return mismatches == 0 ? 0 : 1;
}
