// AES-128 on the accelerator, validated against the FIPS-197 test vector.
//
// Demonstrates broadcast inputs (round keys, S-box and ShiftRows tables are
// shipped once per invocation and cached on chip) and the bandwidth-bound
// behaviour the paper reports for AES.
//
//   build/examples/aes_encryption
#include <array>
#include <cstdio>

#include "apps/app.h"
#include "apps/jvm_baseline.h"
#include "blaze/runtime.h"
#include "s2fa/framework.h"

using namespace s2fa;

int main() {
  apps::App app = apps::FindApp("AES");

  // Expert (manual) configuration: flatten the whole block transform.
  kir::Kernel generated = b2c::CompileKernel(*app.pool, app.spec);
  Artifact artifact =
      BuildWithConfig(*app.pool, app.spec, app.manual_config);
  std::printf("AES design: %.0f cycles/batch @ %.0f MHz, DSP %.0f%% "
              "(table lookups + XOR only)\n",
              artifact.best_hls.cycles, artifact.best_hls.freq_mhz,
              100 * artifact.best_hls.util.dsp_frac);

  blaze::BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "aes", artifact);

  // FIPS-197 appendix B.
  const std::array<std::uint8_t, 16> key = {
      0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const std::array<std::uint8_t, 16> plain = {
      0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
      0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const std::array<std::uint8_t, 16> expect = {
      0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
      0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};

  blaze::Dataset broadcast = apps::MakeAesBroadcast(key);
  blaze::Dataset input;
  {
    blaze::Column col;
    col.field = "_1";
    col.element = jvm::Type::Byte();
    col.per_record = 16;
    for (std::uint8_t b : plain) {
      col.data.push_back(jvm::Value::OfInt(static_cast<std::int8_t>(b)));
    }
    input.AddColumn(std::move(col));
  }

  blaze::Dataset out = runtime.Map("aes", input, &broadcast);
  const auto& cipher = out.ColumnByField("cipher").data;
  std::printf("plaintext : ");
  for (std::uint8_t b : plain) std::printf("%02x", b);
  std::printf("\nciphertext: ");
  bool ok = true;
  for (int i = 0; i < 16; ++i) {
    int byte = cipher[static_cast<std::size_t>(i)].AsInt() & 0xff;
    std::printf("%02x", byte);
    if (byte != expect[static_cast<std::size_t>(i)]) ok = false;
  }
  std::printf("\nFIPS-197 check: %s\n\n", ok ? "PASS" : "FAIL");

  // Throughput demo on a bigger dataset, vs the JVM model.
  Rng rng(99);
  blaze::Dataset blocks = app.make_input(4096, rng);
  Rng brng(3);
  blaze::Dataset bc2 = app.make_broadcast(brng);
  blaze::ExecutionStats stats;
  runtime.Map("aes", blocks, &bc2, &stats);
  apps::JvmRunResult jvm = apps::RunOnJvm(app, blocks, &bc2);
  std::printf("4096 blocks: JVM %.2f ms, FPGA %.3f ms (%.0fx), "
              "transfer share %.0f%%\n",
              jvm.total_ns / 1e6, stats.total_us / 1e3,
              jvm.total_ns / 1000.0 / stats.total_us,
              100.0 * stats.transfer_us / stats.total_us);
  return ok ? 0 : 1;
}
