// Quickstart: compile a tiny Spark-style lambda to an FPGA accelerator.
//
// The lambda is `x => exp(x) * 0.5 + x` over doubles. We author it at the
// level S2FA actually consumes — JVM bytecode — then run the whole flow:
//
//   bytecode --> HLS C --> design space --> DSE --> best design --> Blaze
//
// and finally execute a dataset through the registered accelerator.
//
//   build/examples/quickstart
#include <cstdio>

#include "blaze/runtime.h"
#include "jvm/assembler.h"
#include "s2fa/framework.h"

using namespace s2fa;

int main() {
  // --- 1. The "Scala" lambda, as bytecode (what scalac would emit).
  jvm::ClassPool pool;
  {
    jvm::Assembler a;
    a.Load(jvm::Type::Double(), 0);
    a.InvokeStatic("java/lang/Math", "exp");
    a.DConst(0.5).DMul();
    a.Load(jvm::Type::Double(), 0).DAdd();
    a.Ret(jvm::Type::Double());
    jvm::MethodSignature sig;
    sig.params = {jvm::Type::Double()};
    sig.ret = jvm::Type::Double();
    pool.Define("MyLambda").AddMethod(
        jvm::MakeMethod("call", sig, /*is_static=*/true, 2, a.Finish()));
  }

  // --- 2. The flattening spec: scalar double in, scalar double out.
  b2c::KernelSpec spec;
  spec.kernel_name = "my_lambda";
  spec.klass = "MyLambda";
  spec.input.type = jvm::Type::Double();
  spec.input.fields = {{"x", jvm::Type::Double(), 1, false}};
  spec.output.type = jvm::Type::Double();
  spec.output.fields = {{"y", jvm::Type::Double(), 1, false}};
  spec.batch = 256;

  // --- 3. Run the automation flow (a small DSE budget for the demo).
  FrameworkOptions options;
  options.dse.time_limit_minutes = 60;
  options.dse.num_cores = 8;
  options.dse.seed = 1;
  Artifact artifact = BuildAccelerator(pool, spec, options);

  std::printf("=== generated HLS C (functional) ===\n%s\n",
              artifact.c_source.c_str());
  std::printf("=== best design after DSE ===\nconfig: %s\n",
              artifact.best_config.ToString().c_str());
  std::printf("cycles: %.0f  freq: %.0f MHz  exec: %.2f us/batch\n",
              artifact.best_hls.cycles, artifact.best_hls.freq_mhz,
              artifact.best_hls.exec_us);
  std::printf("explored %zu design points in %.0f simulated minutes\n\n",
              artifact.exploration.evaluations,
              artifact.exploration.elapsed_minutes);

  // --- 4. Register with Blaze and run a dataset through it.
  blaze::BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "my_lambda", artifact);

  blaze::Dataset input;
  blaze::Column x;
  x.field = "x";
  x.element = jvm::Type::Double();
  for (int i = 0; i < 1000; ++i) {
    x.data.push_back(jvm::Value::OfDouble(i * 0.01));
  }
  input.AddColumn(std::move(x));

  blaze::ExecutionStats stats;
  blaze::Dataset out = runtime.Map("my_lambda", input, nullptr, &stats);
  std::printf("=== execution through the Blaze runtime ===\n");
  std::printf("records: %zu  invocations: %zu  accelerator time: %.1f us\n",
              out.num_records(), stats.invocations, stats.total_us);
  std::printf("y[0]=%.6f  y[500]=%.6f  y[999]=%.6f\n",
              out.ColumnByField("y").data[0].AsDouble(),
              out.ColumnByField("y").data[500].AsDouble(),
              out.ColumnByField("y").data[999].AsDouble());
  std::printf("\n=== generated Scala serialization glue ===\n%s\n",
              artifact.scala_helper.c_str());
  return 0;
}
