// A tour of the S2FA design space exploration internals, on KMeans.
//
// Shows the pieces §4 of the paper describes: the Table-1 design space,
// the decision-tree partitions with their rule paths, the two seeds per
// partition, the per-partition exploration outcomes with the entropy
// stopping criterion, and the final design with its Merlin pragmas.
//
//   build/examples/design_space_tour
#include <cstdio>

#include "apps/app.h"
#include "b2c/compiler.h"
#include "dse/explorer.h"
#include "dse/partition.h"
#include "dse/seeds.h"
#include "kir/printer.h"
#include "s2fa/framework.h"

using namespace s2fa;

int main() {
  apps::App app = apps::FindApp("KMeans");
  kir::Kernel kernel = b2c::CompileKernel(*app.pool, app.spec);
  tuner::DesignSpace space = tuner::BuildDesignSpace(kernel);

  std::printf("=== the design space (paper Table 1) ===\n");
  for (const auto& f : space.factors) {
    std::printf("  %-16s %zu values\n", f.name.c_str(), f.values.size());
  }
  std::printf("cardinality: 10^%.1f points\n\n", space.Log10Cardinality());

  std::printf("=== seeds (paper 4.3.2) ===\n");
  tuner::SeedPoint perf = dse::MakePerformanceSeed(space);
  tuner::SeedPoint area = dse::MakeAreaSeed(space);
  std::printf("performance-driven: %s\n",
              space.ToConfig(perf.point).ToString().c_str());
  std::printf("area-driven:        %s\n\n",
              space.ToConfig(area.point).ToString().c_str());

  std::printf("=== exploration (partitions + entropy stop) ===\n");
  tuner::EvalFn evaluate = MakeHlsEvaluator(kernel);
  dse::ExplorerOptions options;
  options.time_limit_minutes = 240;
  options.num_cores = 8;
  options.seed = 11;
  dse::DseResult result = dse::RunS2faDse(space, kernel, evaluate, options);
  for (const auto& p : result.partitions) {
    std::printf("  [%s]\n    start %.0f min, end %.0f min, %zu evals, "
                "stop: %s, best %.2f us\n",
                p.description.c_str(), p.start_minutes, p.end_minutes,
                p.result.evaluations, p.result.stop_reason.c_str(),
                p.clipped_best_cost);
  }
  std::printf("\nDSE finished at %.0f simulated minutes "
              "(%zu evaluations total)\n",
              result.elapsed_minutes, result.evaluations);
  std::printf("best config: %s\n\n", result.best_config.ToString().c_str());

  std::printf("=== best-so-far trace ===\n");
  for (const auto& tp : result.trace) {
    std::printf("  t=%6.1f min  best=%10.2f us\n", tp.time_minutes,
                tp.best_cost);
  }

  merlin::TransformResult best =
      merlin::ApplyDesign(kernel, result.best_config);
  hls::HlsResult hls_result = hls::EstimateHls(best.kernel);
  std::printf("\n=== final design ===\n");
  std::printf("BRAM %.0f%%  DSP %.0f%%  FF %.0f%%  LUT %.0f%%  @ %.0f MHz\n",
              100 * hls_result.util.bram_frac, 100 * hls_result.util.dsp_frac,
              100 * hls_result.util.ff_frac, 100 * hls_result.util.lut_frac,
              hls_result.freq_mhz);
  std::printf("\n=== transformed HLS C with Merlin pragmas ===\n%s\n",
              kir::EmitC(best.kernel).c_str());
  return 0;
}
