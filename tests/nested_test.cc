// Nested composite types (the paper's future-work extension: "more
// object-oriented constructs"): tuples containing tuples flatten
// recursively into the accelerator interface, on both the input and the
// output side, and the whole pipeline — compiler, serialization plan,
// Blaze runtime, JVM baseline — agrees on the dotted-path layout.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "apps/jvm_baseline.h"
#include "b2c/compiler.h"
#include "blaze/runtime.h"
#include "jvm/assembler.h"
#include "jvm/interpreter.h"
#include "kir/eval.h"
#include "s2fa/framework.h"
#include "support/rng.h"

namespace s2fa {
namespace {

using jvm::Assembler;
using jvm::MethodSignature;
using jvm::Type;
using jvm::Value;

constexpr int kVecLen = 4;

// Input:  Outer { _1: Inner { _1: float[4], _2: float }, _2: float }
// Output: OutT  { _1: Pair  { _1: float,    _2: float } }
//
// call(in) = { s = sum(in._1._1) * in._1._2;
//              OutT(Pair(s + in._2, s - in._2)) }
apps::App MakeNestedApp() {
  apps::App app;
  app.name = "Nested";
  app.pool = std::make_shared<jvm::ClassPool>();
  jvm::ClassPool& pool = *app.pool;

  jvm::Klass& inner = pool.Define("Inner");
  inner.AddField({"_1", Type::Array(Type::Float())});
  inner.AddField({"_2", Type::Float()});
  jvm::Klass& outer = pool.Define("Outer");
  outer.AddField({"_1", Type::Class("Inner")});
  outer.AddField({"_2", Type::Float()});
  jvm::Klass& pair = pool.Define("Pair");
  pair.AddField({"_1", Type::Float()});
  pair.AddField({"_2", Type::Float()});
  jvm::Klass& out_t = pool.Define("OutT");
  out_t.AddField({"_1", Type::Class("Pair")});

  Assembler a;
  // locals: 0=in, 1=inner(ref), 2=vec(ref), 3=w, 4=bias, 5=s, 6=j,
  //         7=pair(ref), 8=out(ref)
  a.Load(Type::Class("Outer"), 0).GetField("Outer", "_1")
      .Store(Type::Class("Inner"), 1);
  a.Load(Type::Class("Inner"), 1).GetField("Inner", "_1")
      .Store(Type::Array(Type::Float()), 2);
  a.Load(Type::Class("Inner"), 1).GetField("Inner", "_2")
      .Store(Type::Float(), 3);
  a.Load(Type::Class("Outer"), 0).GetField("Outer", "_2")
      .Store(Type::Float(), 4);
  a.FConst(0.0f).Store(Type::Float(), 5);
  a.IConst(0).Store(Type::Int(), 6);
  auto head = a.NewLabel();
  auto exit = a.NewLabel();
  a.Bind(head);
  a.Load(Type::Int(), 6).IConst(kVecLen).IfICmp(jvm::Cond::kGe, exit);
  a.Load(Type::Float(), 5);
  a.Load(Type::Array(Type::Float()), 2).Load(Type::Int(), 6)
      .ALoadElem(Type::Float());
  a.FAdd().Store(Type::Float(), 5);
  a.IInc(6, 1);
  a.Goto(head);
  a.Bind(exit);
  a.Load(Type::Float(), 5).Load(Type::Float(), 3).FMul()
      .Store(Type::Float(), 5);
  // pair = new Pair; pair._1 = s + bias; pair._2 = s - bias
  a.New("Pair").Store(Type::Class("Pair"), 7);
  a.Load(Type::Class("Pair"), 7);
  a.Load(Type::Float(), 5).Load(Type::Float(), 4).FAdd();
  a.PutField("Pair", "_1");
  a.Load(Type::Class("Pair"), 7);
  a.Load(Type::Float(), 5).Load(Type::Float(), 4).FSub();
  a.PutField("Pair", "_2");
  // out = new OutT; out._1 = pair; return out
  a.New("OutT").Store(Type::Class("OutT"), 8);
  a.Load(Type::Class("OutT"), 8).Load(Type::Class("Pair"), 7)
      .PutField("OutT", "_1");
  a.Load(Type::Class("OutT"), 8).Ret(Type::Class("OutT"));

  MethodSignature sig;
  sig.params = {Type::Class("Outer")};
  sig.ret = Type::Class("OutT");
  pool.Define("NestedKernel")
      .AddMethod(jvm::MakeMethod("call", sig, true, 9, a.Finish()));

  app.spec.kernel_name = "nested_kernel";
  app.spec.klass = "NestedKernel";
  app.spec.input.type = Type::Class("Outer");
  {
    b2c::FieldSpec vec{"_1", Type::Float(), kVecLen, true};
    b2c::FieldSpec w{"_2", Type::Float(), 1, false};
    b2c::FieldSpec inner_f{"_1", Type::Float(), 1, false};
    inner_f.klass = "Inner";
    inner_f.members = {vec, w};
    b2c::FieldSpec bias{"_2", Type::Float(), 1, false};
    app.spec.input.fields = {inner_f, bias};
  }
  app.spec.output.type = Type::Class("OutT");
  {
    b2c::FieldSpec p1{"_1", Type::Float(), 1, false};
    b2c::FieldSpec p2{"_2", Type::Float(), 1, false};
    b2c::FieldSpec pair_f{"_1", Type::Float(), 1, false};
    pair_f.klass = "Pair";
    pair_f.members = {p1, p2};
    app.spec.output.fields = {pair_f};
  }
  app.spec.batch = 8;

  app.make_input = [](std::size_t records, Rng& rng) {
    std::vector<float> vec, w, bias;
    for (std::size_t r = 0; r < records; ++r) {
      for (int j = 0; j < kVecLen; ++j) {
        vec.push_back(static_cast<float>(rng.NextDouble(-1, 1)));
      }
      w.push_back(static_cast<float>(rng.NextDouble(-2, 2)));
      bias.push_back(static_cast<float>(rng.NextDouble(-1, 1)));
    }
    blaze::Dataset d;
    blaze::Column c1;
    c1.field = "_1._1";
    c1.element = Type::Float();
    c1.per_record = kVecLen;
    for (float v : vec) c1.data.push_back(Value::OfFloat(v));
    d.AddColumn(std::move(c1));
    blaze::Column c2;
    c2.field = "_1._2";
    c2.element = Type::Float();
    for (float v : w) c2.data.push_back(Value::OfFloat(v));
    d.AddColumn(std::move(c2));
    blaze::Column c3;
    c3.field = "_2";
    c3.element = Type::Float();
    for (float v : bias) c3.data.push_back(Value::OfFloat(v));
    d.AddColumn(std::move(c3));
    return d;
  };
  return app;
}

TEST(NestedTupleTest, FlattensToDottedInterface) {
  apps::App app = MakeNestedApp();
  kir::Kernel k = b2c::CompileKernel(*app.pool, app.spec);
  ASSERT_EQ(k.InputBuffers().size(), 3u);
  EXPECT_EQ(k.InputBuffers()[0]->source_field, "in._1._1");
  EXPECT_EQ(k.InputBuffers()[0]->per_task, kVecLen);
  EXPECT_EQ(k.InputBuffers()[1]->source_field, "in._1._2");
  EXPECT_EQ(k.InputBuffers()[2]->source_field, "in._2");
  ASSERT_EQ(k.OutputBuffers().size(), 2u);
  EXPECT_EQ(k.OutputBuffers()[0]->source_field, "ret._1._1");
  EXPECT_EQ(k.OutputBuffers()[1]->source_field, "ret._1._2");
}

TEST(NestedTupleTest, EndToEndMatchesJvmBaseline) {
  apps::App app = MakeNestedApp();
  Artifact artifact =
      BuildWithConfig(*app.pool, app.spec, merlin::DesignConfig{});
  blaze::BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "nested", artifact);

  Rng rng(31);
  blaze::Dataset input = app.make_input(19, rng);  // short final batch
  blaze::Dataset got = runtime.Map("nested", input);
  apps::JvmRunResult jvm = apps::RunOnJvm(app, input, nullptr);

  for (const char* field : {"_1._1", "_1._2"}) {
    const auto& g = got.ColumnByField(field).data;
    const auto& w = jvm.output.ColumnByField(field).data;
    ASSERT_EQ(g.size(), w.size());
    for (std::size_t n = 0; n < g.size(); ++n) {
      EXPECT_EQ(g[n].AsFloat(), w[n].AsFloat()) << field << "[" << n << "]";
    }
  }
}

TEST(NestedTupleTest, NativeCrossCheck) {
  apps::App app = MakeNestedApp();
  Rng rng(77);
  blaze::Dataset input = app.make_input(12, rng);
  apps::JvmRunResult jvm = apps::RunOnJvm(app, input, nullptr);
  for (std::size_t r = 0; r < 12; ++r) {
    float s = 0.0f;
    for (int j = 0; j < kVecLen; ++j) {
      s += input.ColumnByField("_1._1")
               .data[r * kVecLen + static_cast<std::size_t>(j)]
               .AsFloat();
    }
    s *= input.ColumnByField("_1._2").data[r].AsFloat();
    float bias = input.ColumnByField("_2").data[r].AsFloat();
    EXPECT_FLOAT_EQ(jvm.output.ColumnByField("_1._1").data[r].AsFloat(),
                    s + bias);
    EXPECT_FLOAT_EQ(jvm.output.ColumnByField("_1._2").data[r].AsFloat(),
                    s - bias);
  }
}

TEST(NestedTupleTest, UnknownNestedClassThrows) {
  apps::App app = MakeNestedApp();
  app.spec.input.fields[0].klass = "NoSuchClass";
  EXPECT_THROW(b2c::CompileKernel(*app.pool, app.spec), Error);
}

TEST(NestedTupleTest, MemberCountMismatchThrows) {
  apps::App app = MakeNestedApp();
  app.spec.input.fields[0].members.pop_back();
  EXPECT_THROW(b2c::CompileKernel(*app.pool, app.spec), Error);
}

}  // namespace
}  // namespace s2fa
