#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "b2c/compiler.h"
#include "blaze/service.h"
#include "jvm/assembler.h"
#include "s2fa/framework.h"

namespace s2fa::blaze {
namespace {

using jvm::Assembler;
using jvm::MethodSignature;
using jvm::Type;
using jvm::Value;

// Doubler: double -> 2 * double, batch 8 (the blaze_test kernel).
jvm::ClassPool MakePool() {
  jvm::ClassPool pool;
  Assembler a;
  a.Load(Type::Double(), 0).DConst(2.0).DMul().Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double()};
  sig.ret = Type::Double();
  pool.Define("Doubler").AddMethod(
      jvm::MakeMethod("call", sig, true, 2, a.Finish()));
  return pool;
}

b2c::KernelSpec MakeSpec(std::int64_t batch = 8) {
  b2c::KernelSpec spec;
  spec.kernel_name = "doubler";
  spec.klass = "Doubler";
  spec.input.type = Type::Double();
  spec.input.fields = {{"x", Type::Double(), 1, false}};
  spec.output.type = Type::Double();
  spec.output.fields = {{"y", Type::Double(), 1, false}};
  spec.batch = batch;
  return spec;
}

Dataset DoublerInput(int n) {
  Dataset input;
  Column x;
  x.field = "x";
  x.element = Type::Double();
  for (int i = 0; i < n; ++i) x.data.push_back(Value::OfDouble(i));
  input.AddColumn(x);
  return input;
}

// A runtime with `replicas` copies of the doubler registered as r0, r1, ...
struct Fixture {
  BlazeRuntime runtime;
  explicit Fixture(int replicas = 1) {
    jvm::ClassPool pool = MakePool();
    Artifact artifact =
        BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
    for (int i = 0; i < replicas; ++i) {
      RegisterWithBlaze(runtime, "r" + std::to_string(i), artifact);
    }
  }
  BlazeService MakeService(ServiceOptions options = {}, int replicas = 1) {
    BlazeService service(runtime, options);
    for (int i = 0; i < replicas; ++i) {
      service.AddReplica("doubler", "r" + std::to_string(i));
    }
    return service;
  }
};

ServiceRequest Req(int records, double arrival_us = 0,
                   double deadline_us = 0) {
  ServiceRequest request;
  request.kernel = "doubler";
  request.input = DoublerInput(records);
  request.arrival_us = arrival_us;
  request.deadline_us = deadline_us;
  return request;
}

bool IsShed(const RequestOutcome& outcome) {
  return outcome.outcome == ServeOutcome::kRejectedFull ||
         outcome.outcome == ServeOutcome::kShedExpired;
}

void ExpectDoubled(const RequestOutcome& outcome, int records) {
  ASSERT_EQ(outcome.output.num_records(), static_cast<std::size_t>(records));
  const Column& y = outcome.output.ColumnByField("y");
  for (int i = 0; i < records; ++i) {
    EXPECT_DOUBLE_EQ(y.data[static_cast<std::size_t>(i)].AsDouble(), 2.0 * i);
  }
}

// Bit-exact canonical rendering of a drain's outcomes.
std::string Canon(const std::vector<RequestOutcome>& outcomes) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& o : outcomes) {
    os << o.id << '|' << ServeOutcomeName(o.outcome) << '|' << o.replica
       << '|' << o.attempts << '|' << o.probe << o.hedged << o.deadline_missed
       << '|' << o.dispatch_us << '|' << o.complete_us << '|' << o.latency_us
       << '|' << o.charged_us << '|';
    for (std::size_t c = 0; c < o.output.num_columns(); ++c) {
      for (const auto& v : o.output.column(c).data) os << v.AsDouble() << ',';
    }
    os << '\n';
  }
  return os.str();
}

// ------------------------------------------------------------- admission

TEST(ServiceTest, RejectsWhenQueueFull) {
  Fixture fx;
  ServiceOptions options;
  options.queue_capacity = 1;
  BlazeService service = fx.MakeService(options);
  // Three simultaneous arrivals, one replica: the first dispatches, the
  // second waits (fills the queue), the third is rejected.
  auto outcomes = service.Run({Req(16), Req(16), Req(16)});
  EXPECT_EQ(outcomes[0].outcome, ServeOutcome::kAccelerator);
  EXPECT_EQ(outcomes[1].outcome, ServeOutcome::kAccelerator);
  EXPECT_EQ(outcomes[2].outcome, ServeOutcome::kRejectedFull);
  EXPECT_EQ(outcomes[2].output.num_records(), 0u);
  EXPECT_EQ(service.stats().rejected_full, 1u);
  EXPECT_EQ(service.stats().admitted, 2u);
  EXPECT_EQ(service.stats().max_queue_depth, 1u);
  ExpectDoubled(outcomes[1], 16);
}

TEST(ServiceTest, ShedsExpiredDeadlineFromQueue) {
  Fixture fx;
  BlazeService service = fx.MakeService();
  // A long request holds the lane; the short-deadline request behind it
  // expires before the lane frees and is shed, not served late.
  auto outcomes = service.Run({Req(512), Req(8, 0, /*deadline_us=*/1.0)});
  EXPECT_EQ(outcomes[0].outcome, ServeOutcome::kAccelerator);
  EXPECT_EQ(outcomes[1].outcome, ServeOutcome::kShedExpired);
  EXPECT_EQ(service.stats().shed_expired, 1u);
  EXPECT_EQ(service.stats().completed, 1u);
  EXPECT_DOUBLE_EQ(outcomes[1].latency_us, 0.0);
}

// ---------------------------------------------------------------- health

TEST(ServiceTest, ConsecutiveFailuresQuarantineTheReplica) {
  Fixture fx;
  BlazeService service = fx.MakeService();
  service.SetFaultInjector(
      [](const std::string&, std::size_t, int) { return true; });
  auto outcomes = service.Run({Req(8), Req(8), Req(8), Req(8)});
  // Every request still completes (host fallback / host-direct): the
  // serving layer never loses an admitted request.
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.outcome, ServeOutcome::kHost);
    ExpectDoubled(o, 8);
  }
  EXPECT_EQ(service.health("r0"), AcceleratorHealth::kQuarantined);
  EXPECT_EQ(service.stats().quarantines, 1u);
  EXPECT_EQ(service.stats().completed, 4u);
  EXPECT_GE(service.stats().crashes + service.stats().timeouts,
            service.stats().accel_failures);
}

TEST(ServiceTest, ProbeReenlistsAfterBurstClears) {
  Fixture fx;
  ServiceOptions options;
  BlazeService service = fx.MakeService(options);
  // Invocations 0 and 1 fail every attempt; the burst then clears.
  service.SetFaultInjector(MakeBurstFaultInjector({0, 2}));
  std::vector<ServiceRequest> wave1 = {Req(8, 0), Req(8, 0)};
  auto first = service.Run(std::move(wave1));
  EXPECT_EQ(service.health("r0"), AcceleratorHealth::kQuarantined);
  for (const auto& o : first) EXPECT_EQ(o.outcome, ServeOutcome::kHost);

  // A request arriving after the probe-eligibility delay is served as the
  // probe; the burst is over, so it succeeds and re-enlists the replica.
  auto second = service.Run({Req(8, /*arrival_us=*/1e6)});
  EXPECT_EQ(second[0].outcome, ServeOutcome::kAccelerator);
  EXPECT_TRUE(second[0].probe);
  ExpectDoubled(second[0], 8);
  EXPECT_EQ(service.stats().probes, 1u);
  EXPECT_EQ(service.stats().probe_successes, 1u);
  EXPECT_EQ(service.stats().reenlistments, 1u);
  EXPECT_EQ(service.health("r0"), AcceleratorHealth::kDegraded);
}

TEST(ServiceTest, FailedProbeBacksOffExponentially) {
  Fixture fx;
  BlazeService service = fx.MakeService();
  service.SetFaultInjector(
      [](const std::string&, std::size_t, int) { return true; });
  service.Run({Req(8), Req(8)});  // quarantine r0
  ASSERT_EQ(service.health("r0"), AcceleratorHealth::kQuarantined);

  // Probe fails too: still quarantined, one probe failure recorded.
  auto probe = service.Run({Req(8, service.clock_us() + 60e3)});
  EXPECT_EQ(probe[0].outcome, ServeOutcome::kHost);  // probe fell back
  EXPECT_TRUE(probe[0].probe);
  EXPECT_EQ(service.stats().probe_failures, 1u);
  EXPECT_EQ(service.health("r0"), AcceleratorHealth::kQuarantined);

  // Immediately after, the backed-off timer has not elapsed: host-direct,
  // no second probe.
  auto direct = service.Run({Req(8, service.clock_us() + 1e3)});
  EXPECT_EQ(direct[0].outcome, ServeOutcome::kHost);
  EXPECT_FALSE(direct[0].probe);
  EXPECT_EQ(service.stats().probes, 1u);
}

TEST(ServiceTest, SelectionPrefersHealthyAndSpillsToDegraded) {
  Fixture fx(2);
  ServiceOptions options;
  options.hedge_quantile = 0;  // keep the dispatch paths plain
  BlazeService service = fx.MakeService(options, 2);
  // Fail r0 on attempt 0 of invocations 0 and 2 (retry succeeds): window
  // rate 2/5 = 0.4 lands in [degrade, quarantine).
  service.SetFaultInjector([](const std::string& id, std::size_t invocation,
                              int attempt) {
    return id == "r0" && attempt == 0 &&
           (invocation == 0 || invocation == 2);
  });
  // Serial warm-up: widely spaced arrivals always find both lanes free, so
  // the registration-order tie-break sends every dispatch to r0.
  std::vector<ServiceRequest> warm;
  for (int i = 0; i < 3; ++i) warm.push_back(Req(8, i * 1e5));
  auto warm_out = service.Run(std::move(warm));
  EXPECT_EQ(warm_out[0].replica, "r0");
  EXPECT_EQ(service.health("r0"), AcceleratorHealth::kDegraded);
  EXPECT_EQ(service.health("r1"), AcceleratorHealth::kHealthy);
  EXPECT_EQ(service.stats().degradations, 1u);

  // Two simultaneous arrivals with both lanes free: the healthy replica is
  // chosen first, the second request spills to the degraded one.
  double t = service.clock_us() + 1;
  auto pair = service.Run({Req(8, t), Req(8, t)});
  EXPECT_EQ(pair[0].replica, "r1");
  EXPECT_EQ(pair[1].replica, "r0");
  EXPECT_EQ(pair[0].outcome, ServeOutcome::kAccelerator);
  EXPECT_EQ(pair[1].outcome, ServeOutcome::kAccelerator);
}

// --------------------------------------------------------------- hedging

TEST(ServiceTest, HedgingReducesTailAndCancelsLoserCharge) {
  auto run = [](double quantile) {
    Fixture fx;
    ServiceOptions options;
    options.hedge_quantile = quantile;
    BlazeService service = fx.MakeService(options);
    std::vector<ServiceRequest> requests;
    // Clean warm-up arms the latency window, then a fault burst.
    for (int i = 0; i < 10; ++i) {
      requests.push_back(Req(64, i * 1e5));
    }
    for (int i = 0; i < 10; ++i) {
      requests.push_back(Req(64, 1e6 + i * 1e5));
    }
    service.SetFaultInjector(MakeBurstFaultInjector({10, 6}));
    auto outcomes = service.Run(std::move(requests));
    struct Out {
      ServiceStats stats;
      double p99;
      std::vector<RequestOutcome> outcomes;
    };
    return Out{service.stats(), service.stats().LatencyQuantile(0.99),
               std::move(outcomes)};
  };
  auto unhedged = run(0);
  auto hedged = run(0.95);
  EXPECT_EQ(hedged.stats.hedges_launched,
            hedged.stats.hedges_won + hedged.stats.hedges_cancelled);
  EXPECT_GT(hedged.stats.hedges_launched, 0u);
  EXPECT_GT(hedged.stats.hedges_won, 0u);
  EXPECT_GT(hedged.stats.cancelled_charge_us, 0.0);
  EXPECT_GT(hedged.stats.hedge_saved_us, 0.0);
  EXPECT_LT(hedged.p99, unhedged.p99);
  // The hedge changes timing, never results.
  for (std::size_t i = 0; i < hedged.outcomes.size(); ++i) {
    if (IsShed(hedged.outcomes[i])) continue;
    ExpectDoubled(hedged.outcomes[i], 64);
  }
}

TEST(ServiceTest, HedgeDelayArmsAfterMinSamples) {
  Fixture fx;
  ServiceOptions options;
  options.hedge_min_samples = 4;
  BlazeService service = fx.MakeService(options);
  EXPECT_FALSE(service.HedgeDelayUs("doubler").has_value());
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 4; ++i) requests.push_back(Req(8, i * 1e4));
  service.Run(std::move(requests));
  ASSERT_TRUE(service.HedgeDelayUs("doubler").has_value());
  EXPECT_GT(*service.HedgeDelayUs("doubler"), 0.0);
}

// ----------------------------------------------------------- robustness

TEST(ServiceTest, NoAdmittedRequestLostUnderFaultBurst) {
  Fixture fx(2);
  ServiceOptions options;
  options.queue_capacity = 4;
  BlazeService service = fx.MakeService(options, 2);
  service.SetFaultInjector(MakeBurstFaultInjector({2, 8}));
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 24; ++i) {
    requests.push_back(Req(8 + (i % 5) * 16, i * 50.0));
  }
  auto outcomes = service.Run(std::move(requests));
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.submitted, 24u);
  EXPECT_EQ(stats.admitted,
            stats.completed + stats.shed_expired);
  for (const auto& o : outcomes) {
    if (IsShed(o)) continue;
    ExpectDoubled(o, static_cast<int>(o.output.num_records()));
    EXPECT_GT(o.latency_us, 0.0);
    EXPECT_GT(o.charged_us, 0.0);
  }
}

TEST(ServiceTest, OutcomesBitIdenticalAcrossExecThreads) {
  auto run = [](int exec_threads) {
    Fixture fx(3);
    ServiceOptions options;
    options.exec_threads = exec_threads;
    options.queue_capacity = 8;
    BlazeService service = fx.MakeService(options, 3);
    service.SetFaultInjector(MakeBurstFaultInjector({1, 6}));
    std::vector<ServiceRequest> requests;
    for (int i = 0; i < 32; ++i) {
      requests.push_back(Req(4 + (i * 7) % 40, (i % 11) * 37.0));
    }
    auto outcomes = service.Run(std::move(requests));
    return Canon(outcomes);
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ServiceTest, OutOfOrderSubmissionKeepsAttribution) {
  Fixture fx;
  BlazeService service = fx.MakeService();
  // Submitted out of arrival order: the planner sorts by arrival, and every
  // outcome (timing, output) must still belong to its own request.
  auto outcomes = service.Run({Req(8, /*arrival_us=*/1e5), Req(512, 0)});
  ExpectDoubled(outcomes[0], 8);
  ExpectDoubled(outcomes[1], 512);
  EXPECT_EQ(outcomes[0].id, 0u);
  EXPECT_EQ(outcomes[1].id, 1u);
  EXPECT_DOUBLE_EQ(outcomes[1].dispatch_us, 0.0);
  EXPECT_GE(outcomes[0].dispatch_us, 1e5);
  // The 512-record request burns far more accelerator time than the
  // 8-record one; swapped attribution would invert the charges.
  EXPECT_GT(outcomes[1].charged_us, outcomes[0].charged_us);
}

TEST(ServiceTest, ClockAdvancesToLastHostCompletion) {
  Fixture fx;
  BlazeService service = fx.MakeService();
  // Every accelerator attempt fails: completions land on the host path,
  // which emits no lane event — the clock must still reach them.
  service.SetFaultInjector(
      [](const std::string&, std::size_t, int) { return true; });
  auto outcomes = service.Run({Req(8), Req(8), Req(8)});
  double last_complete_us = 0;
  for (const auto& o : outcomes) {
    last_complete_us = std::max(last_complete_us, o.complete_us);
  }
  EXPECT_GE(service.clock_us(), last_complete_us);
  // A follow-up arrival is clamped to the clock, i.e. never planned to
  // dispatch before an earlier drain's completions.
  auto next = service.Run({Req(8, /*arrival_us=*/0)});
  EXPECT_GE(next[0].dispatch_us, last_complete_us);
}

TEST(ServiceTest, DrainIsGracefulAndServiceStaysUsable) {
  Fixture fx;
  BlazeService service = fx.MakeService();
  auto first = service.Run({Req(8), Req(8)});
  EXPECT_EQ(first.size(), 2u);
  const double clock_after_first = service.clock_us();
  EXPECT_GT(clock_after_first, 0.0);
  // Stale arrival times are clamped to the service clock: time never runs
  // backwards across drains.
  auto second = service.Run({Req(8, /*arrival_us=*/0)});
  EXPECT_GE(second[0].dispatch_us, clock_after_first);
  EXPECT_EQ(service.stats().completed, 3u);
  EXPECT_TRUE(service.Drain().empty());  // empty drain is a no-op
}

// ------------------------------------------------------------- plumbing

TEST(ServiceTest, ValidatesConfigurationAndIds) {
  Fixture fx;
  EXPECT_THROW(
      { BlazeService bad(fx.runtime, [] {
          ServiceOptions o;
          o.queue_capacity = 0;
          return o;
        }()); },
      Error);
  BlazeService service(fx.runtime);
  EXPECT_THROW(service.AddReplica("doubler", "nope"), InvalidArgument);
  service.AddReplica("doubler", "r0");
  EXPECT_THROW(service.AddReplica("other", "r0"), Error);  // duplicate
  EXPECT_EQ(service.num_replicas("doubler"), 1u);
  EXPECT_EQ(service.num_replicas("other"), 0u);
  EXPECT_THROW(service.health("nope"), Error);
  ServiceRequest unknown;
  unknown.kernel = "nope";
  unknown.input = DoublerInput(4);
  EXPECT_THROW(service.Submit(std::move(unknown)), Error);
}

TEST(ServiceTest, LatencyQuantileIsNearestRank) {
  ServiceStats stats;
  EXPECT_DOUBLE_EQ(stats.LatencyQuantile(0.99), 0.0);
  for (int i = 100; i >= 1; --i) stats.latencies_us.push_back(i);
  EXPECT_DOUBLE_EQ(stats.LatencyQuantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(stats.LatencyQuantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(stats.LatencyQuantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(stats.LatencyQuantile(0.0), 1.0);
  EXPECT_THROW(stats.LatencyQuantile(1.5), Error);
}

TEST(ServiceTest, ParseFaultBurstSyntax) {
  auto burst = ParseFaultBurst("10:5");
  ASSERT_TRUE(burst.has_value());
  EXPECT_EQ(burst->start, 10u);
  EXPECT_EQ(burst->length, 5u);
  EXPECT_FALSE(ParseFaultBurst("10").has_value());
  EXPECT_FALSE(ParseFaultBurst("10:").has_value());
  EXPECT_FALSE(ParseFaultBurst(":5").has_value());
  EXPECT_FALSE(ParseFaultBurst("a:b").has_value());
  EXPECT_FALSE(ParseFaultBurst("1.5:2").has_value());

  EXPECT_EQ(MakeBurstFaultInjector({3, 0}), nullptr);
  AccelFaultInjector injector = MakeBurstFaultInjector({3, 2});
  EXPECT_FALSE(injector("r0", 2, 0));
  EXPECT_TRUE(injector("r0", 3, 0));
  EXPECT_TRUE(injector("r0", 4, 1));
  EXPECT_FALSE(injector("r0", 5, 0));
}

TEST(ServiceTest, ParseFaultBurstsListSyntax) {
  EXPECT_TRUE(ParseFaultBursts("").empty());
  EXPECT_TRUE(ParseFaultBursts("  \t ").empty());
  // Windows come back sorted by start regardless of input order.
  auto bursts = ParseFaultBursts(" 10:5 , 2:3 ");
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].start, 2u);
  EXPECT_EQ(bursts[0].length, 3u);
  EXPECT_EQ(bursts[1].start, 10u);
  EXPECT_EQ(bursts[1].length, 5u);
  EXPECT_THROW(ParseFaultBursts("10"), MalformedInput);
  EXPECT_THROW(ParseFaultBursts("10:5,"), MalformedInput);
  EXPECT_THROW(ParseFaultBursts("10:5,a:b"), MalformedInput);
  EXPECT_THROW(ParseFaultBursts("10:0"), MalformedInput);
  // Overlaps would double-inject: rejected, not merged.
  EXPECT_THROW(ParseFaultBursts("2:4,5:2"), MalformedInput);
  EXPECT_THROW(ParseFaultBursts("2:4,2:4"), MalformedInput);
  EXPECT_NO_THROW(ParseFaultBursts("2:3,5:2"));  // adjacent is fine

  AccelFaultInjector injector =
      MakeBurstFaultInjector(ParseFaultBursts("1:2,6:1"));
  ASSERT_NE(injector, nullptr);
  EXPECT_FALSE(injector("r0", 0, 0));
  EXPECT_TRUE(injector("r0", 1, 0));
  EXPECT_TRUE(injector("r0", 2, 0));
  EXPECT_FALSE(injector("r0", 3, 0));
  EXPECT_TRUE(injector("r0", 6, 0));
  EXPECT_EQ(MakeBurstFaultInjector(ParseFaultBursts("")), nullptr);
}

TEST(ServiceTest, ParseFaultBurstsMessagesAreExact) {
  // Operators paste burst lists into env vars; a typo must name the exact
  // window and reason, so the messages are pinned verbatim.
  auto message = [](const std::string& text) -> std::string {
    try {
      ParseFaultBursts(text);
    } catch (const MalformedInput& e) {
      return e.what();
    }
    return "<no MalformedInput thrown>";
  };
  EXPECT_EQ(message("10"), "fault burst '10' is not START:LEN");
  EXPECT_EQ(message("10:5,a:b"), "fault burst 'a:b' is not START:LEN");
  // A trailing comma leaves an empty window, which is still named.
  EXPECT_EQ(message("10:5,"), "fault burst '' is not START:LEN");
  EXPECT_EQ(message("10:0"), "fault burst '10:0' has zero length");
  EXPECT_EQ(message("2:4,5:2"),
            "fault bursts overlap: [2:4) and [5:2); merge or separate the "
            "windows");
  EXPECT_EQ(message("2:4,2:4"),
            "fault bursts overlap: [2:4) and [2:4); merge or separate the "
            "windows");
}

TEST(ServiceTest, CountHealthTracksReplicaStates) {
  Fixture fx(2);
  ServiceOptions options;
  options.quarantine_consecutive = 2;
  BlazeService service = fx.MakeService(options, 2);
  ReplicaHealthCounts counts = service.CountHealth("doubler", 0);
  EXPECT_EQ(counts.healthy, 2u);
  EXPECT_EQ(counts.degraded, 0u);
  EXPECT_EQ(counts.quarantined, 0u);
  EXPECT_EQ(counts.live(), 2u);
  // Hammer every invocation with faults until both replicas quarantine.
  service.SetFaultInjector(
      [](const std::string&, std::size_t, int) { return true; });
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 16; ++i) requests.push_back(Req(8, i * 10.0));
  service.Run(std::move(requests));
  counts = service.CountHealth("doubler", service.clock_us());
  EXPECT_EQ(counts.live() + counts.quarantined, 2u);
  EXPECT_GT(counts.quarantined, 0u);
  if (counts.quarantined > 0 && counts.probe_ready == 0) {
    // A future probe must be scheduled; far enough out it becomes ready.
    EXPECT_GT(counts.next_probe_us, service.clock_us());
    ReplicaHealthCounts later =
        service.CountHealth("doubler", counts.next_probe_us);
    EXPECT_GT(later.probe_ready, 0u);
  }
}

}  // namespace
}  // namespace s2fa::blaze
