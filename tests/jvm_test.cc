#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "jvm/assembler.h"
#include "jvm/interpreter.h"
#include "jvm/klass.h"
#include "jvm/text.h"
#include "jvm/type.h"
#include "jvm/verifier.h"
#include "support/rng.h"

namespace s2fa::jvm {
namespace {

// ----------------------------------------------------------------- type

TEST(TypeTest, DescriptorsRoundTrip) {
  const char* descriptors[] = {"I", "J", "F", "D", "Z", "B", "C", "S",
                               "[I", "[[D", "LTuple2;", "[LPoint;"};
  for (const char* d : descriptors) {
    EXPECT_EQ(ParseDescriptor(d).Descriptor(), d) << d;
  }
}

TEST(TypeTest, MalformedDescriptorsThrow) {
  EXPECT_THROW(ParseDescriptor("LTuple2"), MalformedInput);
  EXPECT_THROW(ParseDescriptor("Q"), MalformedInput);
  EXPECT_THROW(ParseDescriptor("II"), MalformedInput);
  EXPECT_THROW(ParseDescriptor(""), MalformedInput);
}

TEST(TypeTest, Predicates) {
  EXPECT_TRUE(Type::Int().is_integral());
  EXPECT_TRUE(Type::Long().is_wide());
  EXPECT_TRUE(Type::Double().is_wide());
  EXPECT_FALSE(Type::Float().is_wide());
  EXPECT_TRUE(Type::Array(Type::Int()).is_reference());
  EXPECT_TRUE(Type::Class("Tuple2").is_reference());
  EXPECT_FALSE(Type::Class("Tuple2").is_primitive());
}

TEST(TypeTest, BitWidths) {
  EXPECT_EQ(Type::Byte().bit_width(), 8);
  EXPECT_EQ(Type::Char().bit_width(), 16);
  EXPECT_EQ(Type::Int().bit_width(), 32);
  EXPECT_EQ(Type::Float().bit_width(), 32);
  EXPECT_EQ(Type::Double().bit_width(), 64);
  EXPECT_THROW(Type::Array(Type::Int()).bit_width(), InvalidArgument);
}

TEST(TypeTest, StructuralEquality) {
  EXPECT_EQ(Type::Array(Type::Int()), Type::Array(Type::Int()));
  EXPECT_NE(Type::Array(Type::Int()), Type::Array(Type::Float()));
  EXPECT_EQ(Type::Class("A"), Type::Class("A"));
  EXPECT_NE(Type::Class("A"), Type::Class("B"));
}

TEST(TypeTest, MethodSignatureDescriptor) {
  MethodSignature sig;
  sig.params = {Type::Int(), Type::Array(Type::Float())};
  sig.ret = Type::Float();
  EXPECT_EQ(sig.Descriptor(), "(I[F)F");
}

// ------------------------------------------------------------ assembler

TEST(AssemblerTest, ResolvesForwardLabels) {
  Assembler a;
  auto end = a.NewLabel();
  a.IConst(1).If(Cond::kNe, end).IConst(0).Pop();
  a.Bind(end);
  a.IConst(7).Ret(Type::Int());
  auto code = a.Finish();
  ASSERT_EQ(code.size(), 6u);
  EXPECT_EQ(code[1].target, 4u);
}

TEST(AssemblerTest, UnboundLabelThrows) {
  Assembler a;
  auto l = a.NewLabel();
  a.Goto(l);
  EXPECT_THROW(a.Finish(), MalformedInput);
}

TEST(AssemblerTest, DoubleBindThrows) {
  Assembler a;
  auto l = a.NewLabel();
  a.Bind(l);
  EXPECT_THROW(a.Bind(l), InvalidArgument);
}

// Builds `static int sum(int n) { int s = 0; for (i=0;i<n;i++) s+=i; return s; }`
Method BuildSumMethod() {
  Assembler a;
  // locals: 0=n, 1=s, 2=i
  a.IConst(0).Store(Type::Int(), 1);
  a.IConst(0).Store(Type::Int(), 2);
  auto head = a.NewLabel();
  auto exit = a.NewLabel();
  a.Bind(head);
  a.Load(Type::Int(), 2).Load(Type::Int(), 0).IfICmp(Cond::kGe, exit);
  a.Load(Type::Int(), 1).Load(Type::Int(), 2).IAdd().Store(Type::Int(), 1);
  a.IInc(2, 1);
  a.Goto(head);
  a.Bind(exit);
  a.Load(Type::Int(), 1).Ret(Type::Int());
  MethodSignature sig;
  sig.params = {Type::Int()};
  sig.ret = Type::Int();
  return MakeMethod("sum", sig, /*is_static=*/true, /*max_locals=*/3,
                    a.Finish());
}

// ------------------------------------------------------------- verifier

TEST(VerifierTest, AcceptsWellFormedLoop) {
  ClassPool pool;
  Klass& k = pool.Define("Test");
  k.AddMethod(BuildSumMethod());
  VerifyResult r = Verify(pool, k.GetMethod("sum"));
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_GE(r.max_stack, 2);
}

TEST(VerifierTest, CatchesStackUnderflow) {
  ClassPool pool;
  Assembler a;
  a.Pop();
  a.IConst(0).Ret(Type::Int());
  MethodSignature sig;
  sig.ret = Type::Int();
  Method m = MakeMethod("bad", sig, true, 0, a.Finish());
  VerifyResult r = Verify(pool, m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.errors[0].find("underflow"), std::string::npos);
}

TEST(VerifierTest, CatchesTypeMismatch) {
  ClassPool pool;
  Assembler a;
  a.IConst(1).FConst(2.0f).IAdd();  // int + float under an int add
  a.Ret(Type::Int());
  MethodSignature sig;
  sig.ret = Type::Int();
  Method m = MakeMethod("bad", sig, true, 0, a.Finish());
  EXPECT_FALSE(Verify(pool, m).ok);
}

TEST(VerifierTest, CatchesFallOffEnd) {
  ClassPool pool;
  Assembler a;
  a.IConst(1).Pop();
  MethodSignature sig;
  sig.ret = Type::Void();
  Method m = MakeMethod("bad", sig, true, 0, a.Finish());
  VerifyResult r = Verify(pool, m);
  EXPECT_FALSE(r.ok);
}

TEST(VerifierTest, CatchesBadLocalSlot) {
  ClassPool pool;
  Assembler a;
  a.Load(Type::Int(), 5).Ret(Type::Int());
  MethodSignature sig;
  sig.ret = Type::Int();
  Method m = MakeMethod("bad", sig, true, 1, a.Finish());
  EXPECT_FALSE(Verify(pool, m).ok);
}

TEST(VerifierTest, CatchesBranchOutOfRange) {
  ClassPool pool;
  std::vector<Insn> code;
  Insn g{};
  g.op = Opcode::kGoto;
  g.target = 99;
  code.push_back(g);
  MethodSignature sig;
  sig.ret = Type::Void();
  Method m = MakeMethod("bad", sig, true, 0, std::move(code));
  EXPECT_FALSE(Verify(pool, m).ok);
}

TEST(VerifierTest, CatchesInconsistentMergeDepth) {
  ClassPool pool;
  Assembler a;
  auto other = a.NewLabel();
  auto join = a.NewLabel();
  a.Load(Type::Int(), 0).If(Cond::kEq, other);
  a.IConst(1).Goto(join);        // one value on the stack
  a.Bind(other);                 // zero values on the stack
  a.Bind(join);
  a.Ret(Type::Int());
  MethodSignature sig;
  sig.params = {Type::Int()};
  sig.ret = Type::Int();
  Method m = MakeMethod("bad", sig, true, 1, a.Finish());
  EXPECT_FALSE(Verify(pool, m).ok);
}

TEST(VerifierTest, CatchesUnresolvedField) {
  ClassPool pool;
  pool.Define("Obj");
  Assembler a;
  a.Load(Type::Class("Obj"), 0).GetField("Obj", "missing").Ret(Type::Int());
  MethodSignature sig;
  sig.params = {Type::Class("Obj")};
  sig.ret = Type::Int();
  Method m = MakeMethod("bad", sig, true, 1, a.Finish());
  EXPECT_FALSE(Verify(pool, m).ok);
}

TEST(VerifierTest, CatchesResidualStackAtReturn) {
  ClassPool pool;
  Assembler a;
  a.IConst(1).IConst(2).Ret(Type::Int());
  MethodSignature sig;
  sig.ret = Type::Int();
  Method m = MakeMethod("bad", sig, true, 0, a.Finish());
  VerifyResult r = Verify(pool, m);
  EXPECT_FALSE(r.ok);
}

// ---------------------------------------------------------- interpreter

class InterpFixture : public ::testing::Test {
 protected:
  ClassPool pool_;
  Heap heap_;
};

TEST_F(InterpFixture, SumLoop) {
  Klass& k = pool_.Define("Test");
  k.AddMethod(BuildSumMethod());
  VerifyOrThrow(pool_, k.GetMethod("sum"));
  Interpreter interp(pool_, heap_);
  ExecResult r = interp.Invoke("Test", "sum", {Value::OfInt(100)});
  EXPECT_EQ(r.ret.AsInt(), 4950);
  EXPECT_GT(r.steps, 100u);
  EXPECT_GT(r.cost_ns, 0.0);
}

TEST_F(InterpFixture, FloatArithmeticMatchesNative) {
  Klass& k = pool_.Define("Test");
  Assembler a;
  // f(x, y) = (x * y + x) / (y - 1.5f)
  a.Load(Type::Float(), 0).Load(Type::Float(), 1).FMul();
  a.Load(Type::Float(), 0).FAdd();
  a.Load(Type::Float(), 1).FConst(1.5f).FSub();
  a.FDiv();
  a.Ret(Type::Float());
  MethodSignature sig;
  sig.params = {Type::Float(), Type::Float()};
  sig.ret = Type::Float();
  k.AddMethod(MakeMethod("f", sig, true, 2, a.Finish()));
  VerifyOrThrow(pool_, k.GetMethod("f"));

  Interpreter interp(pool_, heap_);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    float x = static_cast<float>(rng.NextDouble(-10, 10));
    float y = static_cast<float>(rng.NextDouble(-10, 10));
    ExecResult r =
        interp.Invoke("Test", "f", {Value::OfFloat(x), Value::OfFloat(y)});
    float expect = (x * y + x) / (y - 1.5f);
    EXPECT_EQ(r.ret.AsFloat(), expect) << "x=" << x << " y=" << y;
  }
}

TEST_F(InterpFixture, IntDivisionSemantics) {
  Klass& k = pool_.Define("Test");
  Assembler a;
  a.Load(Type::Int(), 0).Load(Type::Int(), 1).Bin(Type::Int(), BinOp::kDiv);
  a.Ret(Type::Int());
  MethodSignature sig;
  sig.params = {Type::Int(), Type::Int()};
  sig.ret = Type::Int();
  k.AddMethod(MakeMethod("div", sig, true, 2, a.Finish()));
  Interpreter interp(pool_, heap_);
  auto call = [&](std::int32_t x, std::int32_t y) {
    return interp
        .Invoke("Test", "div", {Value::OfInt(x), Value::OfInt(y)})
        .ret.AsInt();
  };
  EXPECT_EQ(call(7, 2), 3);
  EXPECT_EQ(call(-7, 2), -3);  // JVM idiv truncates toward zero
  EXPECT_EQ(call(INT32_MIN, -1), INT32_MIN);  // JVM overflow wrap case
  EXPECT_THROW(call(1, 0), InvalidArgument);
}

TEST_F(InterpFixture, ArraysAndBoundsChecks) {
  Klass& k = pool_.Define("Test");
  Assembler a;
  // g(n) = { int[] v = new int[n]; v[0] = 42; return v[n-1] + v[0]; }
  a.Load(Type::Int(), 0).NewArray(Type::Int()).Store(Type::Array(Type::Int()), 1);
  a.Load(Type::Array(Type::Int()), 1).IConst(0).IConst(42).AStoreElem(Type::Int());
  a.Load(Type::Array(Type::Int()), 1).Load(Type::Int(), 0).IConst(1).ISub();
  a.ALoadElem(Type::Int());
  a.Load(Type::Array(Type::Int()), 1).IConst(0).ALoadElem(Type::Int());
  a.IAdd().Ret(Type::Int());
  MethodSignature sig;
  sig.params = {Type::Int()};
  sig.ret = Type::Int();
  k.AddMethod(MakeMethod("g", sig, true, 2, a.Finish()));
  VerifyOrThrow(pool_, k.GetMethod("g"));
  Interpreter interp(pool_, heap_);
  EXPECT_EQ(interp.Invoke("Test", "g", {Value::OfInt(5)}).ret.AsInt(), 42);
  EXPECT_EQ(interp.Invoke("Test", "g", {Value::OfInt(1)}).ret.AsInt(), 84);
  EXPECT_THROW(interp.Invoke("Test", "g", {Value::OfInt(0)}),
               InvalidArgument);  // v[0] out of bounds
}

TEST_F(InterpFixture, TupleFieldsThroughObjects) {
  // class Pair { double _1; double _2; }  f(p) = p._1 * p._2
  Klass& pair = pool_.Define("Pair");
  pair.AddField({"_1", Type::Double()});
  pair.AddField({"_2", Type::Double()});
  Klass& k = pool_.Define("Test");
  Assembler a;
  a.Load(Type::Class("Pair"), 0).GetField("Pair", "_1");
  a.Load(Type::Class("Pair"), 0).GetField("Pair", "_2");
  a.DMul().Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Class("Pair")};
  sig.ret = Type::Double();
  k.AddMethod(MakeMethod("f", sig, true, 1, a.Finish()));
  VerifyOrThrow(pool_, k.GetMethod("f"));

  Ref p = heap_.NewInstance(Type::Class("Pair"), 2);
  heap_.Get(p).slots[0] = Value::OfDouble(6.0);
  heap_.Get(p).slots[1] = Value::OfDouble(7.0);
  Interpreter interp(pool_, heap_);
  EXPECT_DOUBLE_EQ(
      interp.Invoke("Test", "f", {Value::OfRef(p)}).ret.AsDouble(), 42.0);
}

TEST_F(InterpFixture, MethodInvocation) {
  Klass& k = pool_.Define("Test");
  {
    Assembler a;
    a.Load(Type::Int(), 0).Load(Type::Int(), 0).IMul().Ret(Type::Int());
    MethodSignature sig;
    sig.params = {Type::Int()};
    sig.ret = Type::Int();
    k.AddMethod(MakeMethod("square", sig, true, 1, a.Finish()));
  }
  {
    Assembler a;
    a.Load(Type::Int(), 0).InvokeStatic("Test", "square");
    a.Load(Type::Int(), 1).InvokeStatic("Test", "square");
    a.IAdd().Ret(Type::Int());
    MethodSignature sig;
    sig.params = {Type::Int(), Type::Int()};
    sig.ret = Type::Int();
    k.AddMethod(MakeMethod("sumsq", sig, true, 2, a.Finish()));
  }
  VerifyOrThrow(pool_, k.GetMethod("sumsq"));
  Interpreter interp(pool_, heap_);
  EXPECT_EQ(interp.Invoke("Test", "sumsq",
                          {Value::OfInt(3), Value::OfInt(4)})
                .ret.AsInt(),
            25);
}

TEST_F(InterpFixture, MathIntrinsics) {
  Klass& k = pool_.Define("Test");
  Assembler a;
  // h(x) = exp(sqrt(abs(x)))
  a.Load(Type::Double(), 0);
  a.InvokeStatic("java/lang/Math", "abs");
  a.InvokeStatic("java/lang/Math", "sqrt");
  a.InvokeStatic("java/lang/Math", "exp");
  a.Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double()};
  sig.ret = Type::Double();
  k.AddMethod(MakeMethod("h", sig, true, 2, a.Finish()));
  VerifyOrThrow(pool_, k.GetMethod("h"));
  Interpreter interp(pool_, heap_);
  double x = -2.25;
  EXPECT_DOUBLE_EQ(
      interp.Invoke("Test", "h", {Value::OfDouble(x)}).ret.AsDouble(),
      std::exp(std::sqrt(std::fabs(x))));
}

TEST_F(InterpFixture, MathMinMaxFollowJavaSemantics) {
  // Java's Math.max/min propagate NaN and order the zeros (-0.0 < +0.0);
  // fmax/fmin do neither (regression: the intrinsics used to lower to
  // fmax/fmin).
  Klass& k = pool_.Define("Test");
  {
    Assembler a;
    a.Load(Type::Double(), 0).Load(Type::Double(), 2)
        .InvokeStatic("java/lang/Math", "max");
    a.Ret(Type::Double());
    MethodSignature sig;
    sig.params = {Type::Double(), Type::Double()};
    sig.ret = Type::Double();
    k.AddMethod(MakeMethod("dmax", sig, true, 4, a.Finish()));
  }
  {
    Assembler a;
    a.Load(Type::Double(), 0).Load(Type::Double(), 2)
        .InvokeStatic("java/lang/Math", "min");
    a.Ret(Type::Double());
    MethodSignature sig;
    sig.params = {Type::Double(), Type::Double()};
    sig.ret = Type::Double();
    k.AddMethod(MakeMethod("dmin", sig, true, 4, a.Finish()));
  }
  VerifyOrThrow(pool_, k.GetMethod("dmax"));
  VerifyOrThrow(pool_, k.GetMethod("dmin"));
  Interpreter interp(pool_, heap_);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(
      interp.Invoke("Test", "dmax", {Value::OfDouble(nan),
                                     Value::OfDouble(1.0)}).ret.AsDouble()));
  EXPECT_TRUE(std::isnan(
      interp.Invoke("Test", "dmin", {Value::OfDouble(2.0),
                                     Value::OfDouble(nan)}).ret.AsDouble()));
  EXPECT_TRUE(std::signbit(
      interp.Invoke("Test", "dmin", {Value::OfDouble(0.0),
                                     Value::OfDouble(-0.0)}).ret.AsDouble()));
  EXPECT_FALSE(std::signbit(
      interp.Invoke("Test", "dmax", {Value::OfDouble(-0.0),
                                     Value::OfDouble(0.0)}).ret.AsDouble()));
}

TEST_F(InterpFixture, FloatBinOpMinMaxFollowJavaSemantics) {
  // Same Java semantics for the fmin/fmax-shaped BinOp path.
  Klass& k = pool_.Define("Test");
  Assembler a;
  a.Load(Type::Float(), 0).Load(Type::Float(), 1)
      .Bin(Type::Float(), BinOp::kMin);
  a.Ret(Type::Float());
  MethodSignature sig;
  sig.params = {Type::Float(), Type::Float()};
  sig.ret = Type::Float();
  k.AddMethod(MakeMethod("fmin2", sig, true, 2, a.Finish()));
  VerifyOrThrow(pool_, k.GetMethod("fmin2"));
  Interpreter interp(pool_, heap_);
  EXPECT_TRUE(std::signbit(
      interp.Invoke("Test", "fmin2", {Value::OfFloat(0.0f),
                                      Value::OfFloat(-0.0f)}).ret.AsFloat()));
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(
      interp.Invoke("Test", "fmin2", {Value::OfFloat(nan),
                                      Value::OfFloat(3.0f)}).ret.AsFloat()));
}

TEST_F(InterpFixture, ConversionTruncation) {
  Klass& k = pool_.Define("Test");
  Assembler a;
  a.Load(Type::Double(), 0).Convert(Type::Double(), Type::Int());
  a.Ret(Type::Int());
  MethodSignature sig;
  sig.params = {Type::Double()};
  sig.ret = Type::Int();
  k.AddMethod(MakeMethod("d2i", sig, true, 2, a.Finish()));
  Interpreter interp(pool_, heap_);
  EXPECT_EQ(interp.Invoke("Test", "d2i", {Value::OfDouble(3.99)}).ret.AsInt(),
            3);
  EXPECT_EQ(interp.Invoke("Test", "d2i", {Value::OfDouble(-3.99)}).ret.AsInt(),
            -3);
}

TEST_F(InterpFixture, ByteArrayStoreNarrows) {
  Klass& k = pool_.Define("Test");
  Assembler a;
  // b(n) = { byte[] v = new byte[1]; v[0] = (byte)n; return v[0]; }
  a.IConst(1).NewArray(Type::Byte()).Store(Type::Array(Type::Byte()), 1);
  a.Load(Type::Array(Type::Byte()), 1).IConst(0).Load(Type::Int(), 0);
  a.AStoreElem(Type::Byte());
  a.Load(Type::Array(Type::Byte()), 1).IConst(0).ALoadElem(Type::Byte());
  a.Ret(Type::Int());
  MethodSignature sig;
  sig.params = {Type::Int()};
  sig.ret = Type::Int();
  k.AddMethod(MakeMethod("b", sig, true, 2, a.Finish()));
  Interpreter interp(pool_, heap_);
  EXPECT_EQ(interp.Invoke("Test", "b", {Value::OfInt(130)}).ret.AsInt(),
            -126);  // 130 wraps to signed byte
}

TEST_F(InterpFixture, CostGrowsWithWork) {
  Klass& k = pool_.Define("Test");
  k.AddMethod(BuildSumMethod());
  Interpreter interp(pool_, heap_);
  double c10 = interp.Invoke("Test", "sum", {Value::OfInt(10)}).cost_ns;
  double c1000 = interp.Invoke("Test", "sum", {Value::OfInt(1000)}).cost_ns;
  EXPECT_GT(c1000, c10 * 50);
}

TEST_F(InterpFixture, StepBudgetGuardsRunaways) {
  Klass& k = pool_.Define("Test");
  Assembler a;
  auto head = a.NewLabel();
  a.Bind(head);
  a.Goto(head);  // infinite loop
  MethodSignature sig;
  sig.ret = Type::Void();
  k.AddMethod(MakeMethod("spin", sig, true, 0, a.Finish()));
  Interpreter interp(pool_, heap_);
  interp.set_max_steps(10000);
  EXPECT_THROW(interp.Invoke("Test", "spin", {}), InternalError);
}

// Property sweep: interpreted Smith-Waterman-style max-recurrence inner cell
// matches a native implementation over random inputs.
class CellParamTest : public ::testing::TestWithParam<int> {};

TEST_P(CellParamTest, MaxOfThreeMatchesNative) {
  ClassPool pool;
  Heap heap;
  Klass& k = pool.Define("Test");
  Assembler a;
  // cell(a, b, c) = max(0, max(a, max(b, c)))
  a.Load(Type::Int(), 1).Load(Type::Int(), 2).Bin(Type::Int(), BinOp::kMax);
  a.Load(Type::Int(), 0).Bin(Type::Int(), BinOp::kMax);
  a.IConst(0).Bin(Type::Int(), BinOp::kMax);
  a.Ret(Type::Int());
  MethodSignature sig;
  sig.params = {Type::Int(), Type::Int(), Type::Int()};
  sig.ret = Type::Int();
  k.AddMethod(MakeMethod("cell", sig, true, 3, a.Finish()));
  VerifyOrThrow(pool, k.GetMethod("cell"));
  Interpreter interp(pool, heap);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    int x = static_cast<int>(rng.NextInt(-100, 100));
    int y = static_cast<int>(rng.NextInt(-100, 100));
    int z = static_cast<int>(rng.NextInt(-100, 100));
    int got = interp
                  .Invoke("Test", "cell",
                          {Value::OfInt(x), Value::OfInt(y), Value::OfInt(z)})
                  .ret.AsInt();
    EXPECT_EQ(got, std::max(0, std::max(x, std::max(y, z))));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellParamTest, ::testing::Range(1, 9));

// -------------------------------------------------------------- classes

TEST(KlassTest, FieldIndexing) {
  Klass k("P");
  k.AddField({"x", Type::Int()});
  k.AddField({"y", Type::Float()});
  EXPECT_EQ(k.FieldIndex("x"), 0u);
  EXPECT_EQ(k.FieldIndex("y"), 1u);
  EXPECT_THROW(k.FieldIndex("z"), MalformedInput);
  EXPECT_THROW(k.AddField({"x", Type::Int()}), InvalidArgument);
}

TEST(KlassTest, MathIntrinsicDetection) {
  EXPECT_TRUE(ClassPool::IsMathIntrinsic("java/lang/Math", "exp"));
  EXPECT_TRUE(ClassPool::IsMathIntrinsic("java/lang/Math", "pow"));
  EXPECT_FALSE(ClassPool::IsMathIntrinsic("java/lang/Math", "tan"));
  EXPECT_FALSE(ClassPool::IsMathIntrinsic("Other", "exp"));
}

TEST(KlassTest, PoolRejectsDuplicates) {
  ClassPool pool;
  pool.Define("A");
  EXPECT_THROW(pool.Define("A"), InvalidArgument);
  EXPECT_THROW(pool.Get("Missing"), MalformedInput);
}

TEST(InsnTest, DisassembleProducesOneLinePerInsn) {
  Method m = BuildSumMethod();
  std::string text = Disassemble(m.code);
  std::size_t lines = static_cast<std::size_t>(
      std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, m.code.size());
  EXPECT_NE(text.find("if_icmp"), std::string::npos);
}

// --------------------------------------------------------- textual form

TEST(TextTest, RoundTripsTheSumLoop) {
  Method m = BuildSumMethod();
  std::vector<Insn> parsed = ParseCode(Disassemble(m.code));
  ASSERT_EQ(parsed.size(), m.code.size());
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    EXPECT_EQ(parsed[i].ToString(), m.code[i].ToString()) << i;
  }
}

TEST(TextTest, ParsedCodeExecutesIdentically) {
  ClassPool pool;
  Klass& k = pool.Define("Test");
  Method original = BuildSumMethod();
  Method reparsed = original;
  reparsed.name = "sum2";
  reparsed.code = ParseCode(Disassemble(original.code));
  k.AddMethod(original);
  k.AddMethod(reparsed);
  Heap heap;
  Interpreter interp(pool, heap);
  EXPECT_EQ(interp.Invoke("Test", "sum", {Value::OfInt(50)}).ret.AsInt(),
            interp.Invoke("Test", "sum2", {Value::OfInt(50)}).ret.AsInt());
}

TEST(TextTest, CommentsAndBlankLinesIgnored) {
  std::vector<Insn> code = ParseCode(
      "# a comment\n"
      "\n"
      "  const int 7\n"
      "  12: return int\n");
  ASSERT_EQ(code.size(), 2u);
  EXPECT_EQ(code[0].const_i, 7);
  EXPECT_EQ(code[1].op, Opcode::kReturn);
}

TEST(TextTest, SyntaxErrorsCarryLineNumbers) {
  try {
    ParseCode("const int 1\nfrobnicate\n");
    FAIL() << "should have thrown";
  } catch (const MalformedInput& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TextTest, ParsesEveryInstructionShape) {
  const char* lines[] = {
      "const float 2.5",        "const long -9",
      "load FPoint slot=0",     "store double[] slot=3",
      "aload_elem byte",        "astore_elem char",
      "newarray int",           "arraylength",
      "binop float max",        "neg double",
      "convert int->float",     "cmp double g",
      "if ne ->4",              "if_icmp le ->0",
      "goto ->2",               "iinc slot=2 +-3",
      "getfield P._1",          "putfield P._2",
      "new P",                  "invoke virtual P.f",
      "invoke static M.g",      "dup",
      "pop",                    "swap",
      "return void",
  };
  for (const char* line : lines) {
    Insn insn = ParseInsn(line);
    // Round trip through ToString and back.
    Insn again = ParseInsn(insn.ToString());
    EXPECT_EQ(again.ToString(), insn.ToString()) << line;
  }
}

}  // namespace
}  // namespace s2fa::jvm
