#include <gtest/gtest.h>

#include <limits>

#include "hls/estimator.h"
#include "kir/analysis.h"
#include "merlin/transform.h"

namespace s2fa::hls {
namespace {

using kir::BinaryOp;
using kir::Buffer;
using kir::BufferKind;
using kir::Expr;
using kir::Stmt;
using kir::Type;
using merlin::DesignConfig;
using merlin::PipelineMode;

// Streaming map kernel: out[i] = in[i] * 2 + 1, trip 1024.
kir::Kernel StreamKernel() {
  kir::Kernel k;
  k.name = "stream";
  k.buffers.push_back({"in", Type::Float(), 1024, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Float(), 1024, BufferKind::kOutput, ""});
  auto i = Expr::Var("i", Type::Int());
  auto body = Stmt::Assign(
      Expr::ArrayRef("out", Type::Float(), i),
      Expr::Binary(BinaryOp::kAdd,
                   Expr::Binary(BinaryOp::kMul,
                                Expr::ArrayRef("in", Type::Float(), i),
                                Expr::FloatLit(2.0f)),
                   Expr::FloatLit(1.0f)));
  auto loop = Stmt::For(0, "i", 1024, Stmt::Block({body}));
  loop->set_inserted_by_template(true);
  k.body = Stmt::Block({loop});
  k.task_loop_id = 0;
  return k;
}

// Accumulating kernel: acc += in[i] (float), trip 1024 — carried recurrence.
kir::Kernel ReduceKernel() {
  kir::Kernel k;
  k.name = "reduce";
  k.buffers.push_back({"in", Type::Float(), 1024, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Float(), 1, BufferKind::kOutput, ""});
  auto i = Expr::Var("i", Type::Int());
  auto acc = Expr::Var("acc", Type::Float());
  auto loop = Stmt::For(
      0, "i", 1024,
      Stmt::Block({Stmt::Assign(
          acc, Expr::Binary(BinaryOp::kAdd, acc,
                            Expr::ArrayRef("in", Type::Float(), i)))}));
  loop->set_is_reduction(true);
  k.body = Stmt::Block(
      {Stmt::Decl("acc", Type::Float(), Expr::FloatLit(0.0f)), loop,
       Stmt::Assign(Expr::ArrayRef("out", Type::Float(), Expr::IntLit(0)),
                    acc)});
  k.task_loop_id = 0;
  return k;
}

// Wavefront kernel: h[i+1] = h[i] + in[i] over a local buffer.
kir::Kernel WavefrontKernel() {
  kir::Kernel k;
  k.name = "wave";
  k.buffers.push_back({"in", Type::Int(), 256, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Int(), 1, BufferKind::kOutput, ""});
  k.buffers.push_back({"h", Type::Int(), 257, BufferKind::kLocal, ""});
  auto i = Expr::Var("i", Type::Int());
  auto loop = Stmt::For(
      0, "i", 256,
      Stmt::Block({Stmt::Assign(
          Expr::ArrayRef("h", Type::Int(),
                         Expr::Binary(BinaryOp::kAdd, i, Expr::IntLit(1))),
          Expr::Binary(BinaryOp::kAdd, Expr::ArrayRef("h", Type::Int(), i),
                       Expr::ArrayRef("in", Type::Int(), i)))}));
  k.body = Stmt::Block(
      {loop,
       Stmt::Assign(Expr::ArrayRef("out", Type::Int(), Expr::IntLit(0)),
                    Expr::ArrayRef("h", Type::Int(), Expr::IntLit(256)))});
  k.task_loop_id = 0;
  return k;
}

kir::Kernel Transformed(const kir::Kernel& k, const DesignConfig& cfg) {
  return merlin::ApplyDesign(k, cfg).kernel;
}

TEST(HlsTest, BaselineIsFeasibleAndSequential) {
  HlsResult r = EstimateHls(StreamKernel());
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.cycles, 1024.0);  // at least one cycle per element
  EXPECT_GT(r.freq_mhz, 100.0);
  EXPECT_LT(r.util.MaxFraction(), 0.2);
  EXPECT_GT(r.eval_minutes, 0.0);
}

TEST(HlsTest, PlausibleSanityChecksResults) {
  HlsResult r = EstimateHls(StreamKernel());
  EXPECT_TRUE(r.Plausible());

  HlsResult nan_cycles = r;
  nan_cycles.cycles = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(nan_cycles.Plausible());

  HlsResult zero_freq = r;
  zero_freq.freq_mhz = 0;
  EXPECT_FALSE(zero_freq.Plausible());

  HlsResult wild_util = r;
  wild_util.util.lut_frac = 1.7;  // >100% from a tool claiming feasibility
  EXPECT_FALSE(wild_util.Plausible());

  HlsResult no_minutes = r;
  no_minutes.eval_minutes = 0;
  EXPECT_FALSE(no_minutes.Plausible());

  // An infeasible verdict is a sane answer: only the runtime needs to hold.
  HlsResult infeasible;
  infeasible.feasible = false;
  infeasible.eval_minutes = 2.0;
  EXPECT_TRUE(infeasible.Plausible());
}

TEST(HlsTest, PipeliningCutsCycles) {
  kir::Kernel k = StreamKernel();
  DesignConfig off, on;
  on.loops[0] = {1, 1, PipelineMode::kOn};
  HlsResult r_off = EstimateHls(Transformed(k, off));
  HlsResult r_on = EstimateHls(Transformed(k, on));
  EXPECT_LT(r_on.cycles, r_off.cycles / 3.0);
}

TEST(HlsTest, UnrollingCutsCyclesAndRaisesResources) {
  kir::Kernel k = StreamKernel();
  DesignConfig u1, u16;
  u1.loops[0] = {1, 1, PipelineMode::kOn};
  u1.buffer_bits["in"] = 512;
  u1.buffer_bits["out"] = 512;
  u16.loops[0] = {1, 16, PipelineMode::kOn};
  u16.buffer_bits["in"] = 512;
  u16.buffer_bits["out"] = 512;
  HlsResult r1 = EstimateHls(Transformed(k, u1));
  HlsResult r16 = EstimateHls(Transformed(k, u16));
  EXPECT_LT(r16.cycles, r1.cycles);
  EXPECT_GT(r16.util.dsp, r1.util.dsp);
  EXPECT_GT(r16.util.lut, r1.util.lut);
}

TEST(HlsTest, WideInterfaceRaisesStreamingThroughput) {
  kir::Kernel k = StreamKernel();
  DesignConfig narrow, wide;
  narrow.loops[0] = {1, 8, PipelineMode::kOn};
  narrow.buffer_bits["in"] = 32;
  narrow.buffer_bits["out"] = 32;
  wide.loops[0] = {1, 8, PipelineMode::kOn};
  wide.buffer_bits["in"] = 512;
  wide.buffer_bits["out"] = 512;
  HlsResult r_narrow = EstimateHls(Transformed(k, narrow));
  HlsResult r_wide = EstimateHls(Transformed(k, wide));
  // 8 x 32-bit accesses/initiation: II 8 at 32-bit, II 1 at 512-bit.
  EXPECT_LT(r_wide.cycles * 3, r_narrow.cycles);
}

TEST(HlsTest, RecurrenceBoundsII) {
  kir::Kernel k = ReduceKernel();
  // Strip the reduction mark: an accumulation Merlin may NOT reorder
  // (strict-IEEE) pipelines at the add-chain latency instead of II 1.
  kir::FindLoop(k.body, 0)->set_is_reduction(false);
  DesignConfig cfg;
  cfg.loops[0] = {1, 1, PipelineMode::kOn};
  cfg.buffer_bits["in"] = 512;
  HlsResult r = EstimateHls(Transformed(k, cfg));
  // II is bounded by the float-add cycle (latency 7): cycles ~ 7 * 1024.
  EXPECT_GT(r.cycles, 6.0 * 1024);
  EXPECT_LT(r.cycles, 9.0 * 1024);
}

TEST(HlsTest, TreeReductionRestoresII) {
  kir::Kernel k = ReduceKernel();
  DesignConfig cfg;
  cfg.loops[0] = {1, 8, PipelineMode::kOn};  // reduction -> tree pragma
  cfg.buffer_bits["in"] = 512;
  kir::Kernel t = Transformed(k, cfg);
  EXPECT_TRUE(merlin::HasTreeReduction(*kir::FindLoop(t.body, 0)));
  HlsResult r = EstimateHls(t);
  // 1024/8 initiations at II ~2 (memory) beats the recurrence-bound 7*1024.
  EXPECT_LT(r.cycles, 1024.0 * 2);
}

TEST(HlsTest, OverUnrollingBecomesInfeasible) {
  // exp() is expensive; massive unrolling must blow the resource cap.
  kir::Kernel k = StreamKernel();
  auto i = Expr::Var("i", Type::Int());
  auto loop = kir::FindLoop(k.body, 0);
  loop->set_body(Stmt::Block({Stmt::Assign(
      Expr::ArrayRef("out", Type::Float(), i),
      Expr::Call(kir::Intrinsic::kExp,
                 {Expr::ArrayRef("in", Type::Float(), i)}, Type::Float()))}));
  DesignConfig cfg;
  cfg.loops[0] = {1, 1024, PipelineMode::kOn};
  HlsResult r = EstimateHls(Transformed(k, cfg));
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.infeasible_reason.find("utilization exceeds"),
            std::string::npos);
  // The structured attribution names the same overfull resource the prose
  // reason does — Plausible() enforces this agreement.
  const std::string resource = BottleneckCapResource(r.bottleneck.kind);
  ASSERT_FALSE(resource.empty());
  EXPECT_EQ(r.infeasible_reason.find(resource), 0u);
  EXPECT_GT(r.bottleneck.quantity, 0.0);
  EXPECT_TRUE(r.Plausible());
}

TEST(HlsTest, PlausibleRejectsMismatchedAttribution) {
  // An infeasible verdict whose structured bottleneck blames a different
  // decision than the prose reason is a bug, not a result.
  HlsResult capped;
  capped.feasible = false;
  capped.eval_minutes = 2.0;
  capped.infeasible_reason = "dsp utilization exceeds the usable cap";
  capped.bottleneck.kind = BottleneckKind::kDspCap;
  capped.bottleneck.quantity = 0.9;
  EXPECT_TRUE(capped.Plausible());
  capped.bottleneck.kind = BottleneckKind::kBramCap;  // wrong resource
  EXPECT_FALSE(capped.Plausible());
  capped.bottleneck.kind = BottleneckKind::kFreqCongestion;  // not a cap
  EXPECT_FALSE(capped.Plausible());

  HlsResult timing;
  timing.feasible = false;
  timing.eval_minutes = 2.0;
  timing.infeasible_reason = "timing closure failed";
  timing.bottleneck.kind = BottleneckKind::kRoutingWall;
  timing.bottleneck.quantity = 4.0;
  EXPECT_TRUE(timing.Plausible());
  timing.bottleneck.kind = BottleneckKind::kLutCap;  // resources, not timing
  EXPECT_FALSE(timing.Plausible());
}

TEST(HlsTest, PlausibleRejectsGarbageAttributionNumbers) {
  HlsResult r = EstimateHls(StreamKernel());
  ASSERT_TRUE(r.Plausible());
  HlsResult nan_quantity = r;
  nan_quantity.bottleneck.kind = BottleneckKind::kMemoryPortII;
  nan_quantity.bottleneck.quantity = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(nan_quantity.Plausible());
  HlsResult negative = r;
  negative.bottleneck.kind = BottleneckKind::kMemoryPortII;
  negative.bottleneck.quantity = -2.0;
  EXPECT_FALSE(negative.Plausible());
}

TEST(HlsTest, AttributesRecurrenceII) {
  kir::Kernel k = ReduceKernel();
  kir::FindLoop(k.body, 0)->set_is_reduction(false);
  DesignConfig cfg;
  cfg.loops[0] = {1, 1, PipelineMode::kOn};
  cfg.buffer_bits["in"] = 512;
  HlsResult r = EstimateHls(Transformed(k, cfg));
  // Strict-IEEE accumulation: the float-add chain binds the II.
  EXPECT_EQ(r.bottleneck.kind, BottleneckKind::kRecurrenceII);
  EXPECT_GT(r.bottleneck.quantity, 1.0);
}

TEST(HlsTest, AttributesMemorySideII) {
  kir::Kernel k = StreamKernel();
  DesignConfig cfg;
  cfg.loops[0] = {1, 8, PipelineMode::kOn};
  cfg.buffer_bits["in"] = 32;  // 8 accesses per initiation through one port
  cfg.buffer_bits["out"] = 32;
  HlsResult r = EstimateHls(Transformed(k, cfg));
  ASSERT_TRUE(r.feasible);
  // The narrow interface binds: either the port conflict or the AXI beat
  // budget, both attacked by the same factor subset.
  EXPECT_TRUE(r.bottleneck.kind == BottleneckKind::kMemoryPortII ||
              r.bottleneck.kind == BottleneckKind::kAxiBandwidth)
      << BottleneckKindName(r.bottleneck.kind);
  EXPECT_GT(r.bottleneck.quantity, 1.0);
}

TEST(HlsTest, AttributesFrequencyWall) {
  kir::Kernel k = WavefrontKernel();
  DesignConfig harsh;
  harsh.loops[0] = {1, 64, PipelineMode::kOn};
  HlsResult r = EstimateHls(Transformed(k, harsh));
  // Whether or not the slowdown crosses into infeasibility, the
  // attribution must blame a frequency decision, not a cap or an II.
  EXPECT_TRUE(r.bottleneck.kind == BottleneckKind::kFreqCongestion ||
              r.bottleneck.kind == BottleneckKind::kRoutingWall)
      << BottleneckKindName(r.bottleneck.kind);
}

// Strength-reduced constant multiplies must size their shift/add network
// from the variable operand regardless of operand order: `c * x` and
// `x * c` are the same hardware.
TEST(HlsTest, ConstMultiplyCostIsOperandOrderInvariant) {
  auto make = [](bool literal_first) {
    kir::Kernel k;
    k.name = literal_first ? "cmul_lit_first" : "cmul_lit_second";
    k.buffers.push_back({"in", Type::Long(), 256, BufferKind::kInput, ""});
    k.buffers.push_back({"out", Type::Long(), 256, BufferKind::kOutput, ""});
    auto i = Expr::Var("i", Type::Int());
    auto x = Expr::ArrayRef("in", Type::Long(), i);
    auto c = Expr::IntLit(3);  // 32-bit literal against a 64-bit operand
    auto product =
        literal_first ? Expr::Binary(BinaryOp::kMul, c, x)
                      : Expr::Binary(BinaryOp::kMul, x, c);
    auto loop = Stmt::For(
        0, "i", 256,
        Stmt::Block({Stmt::Assign(Expr::ArrayRef("out", Type::Long(), i),
                                  product)}));
    k.body = Stmt::Block({loop});
    k.task_loop_id = 0;
    return k;
  };
  HlsResult lit_first = EstimateHls(make(true));
  HlsResult lit_second = EstimateHls(make(false));
  EXPECT_EQ(lit_first.util.lut, lit_second.util.lut);
  EXPECT_EQ(lit_first.util.ff, lit_second.util.ff);
  EXPECT_EQ(lit_first.util.dsp, lit_second.util.dsp);
  EXPECT_EQ(lit_first.cycles, lit_second.cycles);
}

TEST(HlsTest, WavefrontUnrollTanksFrequency) {
  kir::Kernel k = WavefrontKernel();
  DesignConfig mild, harsh;
  mild.loops[0] = {1, 1, PipelineMode::kOn};
  harsh.loops[0] = {1, 64, PipelineMode::kOn};
  HlsResult r_mild = EstimateHls(Transformed(k, mild));
  HlsResult r_harsh = EstimateHls(Transformed(k, harsh));
  EXPECT_GT(r_mild.freq_mhz, r_harsh.freq_mhz);
  EXPECT_LE(r_harsh.freq_mhz, 120.0);  // the S-W story (paper Table 2)
}

TEST(HlsTest, PipelineIgnoredWithLiveSubloops) {
  // Outer loop containing a non-unrolled inner loop: pipelining the outer
  // is ineffective and the estimator notes it.
  kir::Kernel k;
  k.name = "nested";
  k.buffers.push_back({"in", Type::Float(), 64, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Float(), 8, BufferKind::kOutput, ""});
  auto i = Expr::Var("i", Type::Int());
  auto j = Expr::Var("j", Type::Int());
  auto acc = Expr::Var("acc", Type::Float());
  auto inner = Stmt::For(
      1, "j", 8,
      Stmt::Block({Stmt::Assign(
          acc,
          Expr::Binary(BinaryOp::kAdd, acc,
                       Expr::ArrayRef(
                           "in", Type::Float(),
                           Expr::Binary(BinaryOp::kAdd,
                                        Expr::Binary(BinaryOp::kMul, i,
                                                     Expr::IntLit(8)),
                                        j))))}));
  auto outer = Stmt::For(
      0, "i", 8,
      Stmt::Block({Stmt::Decl("acc", Type::Float(), Expr::FloatLit(0.0f)),
                   inner,
                   Stmt::Assign(Expr::ArrayRef("out", Type::Float(), i),
                                acc)}));
  k.body = Stmt::Block({outer});

  DesignConfig cfg;
  cfg.loops[0] = {1, 1, PipelineMode::kOn};
  HlsResult r = EstimateHls(Transformed(k, cfg));
  bool noted = false;
  for (const auto& note : r.notes) {
    if (note.find("pipeline ignored") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);

  // Flatten fixes it: sub-loop fully unrolled, outer pipelines.
  DesignConfig flat;
  flat.loops[0] = {1, 1, PipelineMode::kFlatten};
  HlsResult r_flat = EstimateHls(Transformed(k, flat));
  EXPECT_LT(r_flat.cycles, r.cycles);
}

TEST(HlsTest, EvalMinutesGrowWithSpatialSize) {
  kir::Kernel k = StreamKernel();
  DesignConfig small, big;
  small.loops[0] = {1, 1, PipelineMode::kOn};
  big.loops[0] = {1, 128, PipelineMode::kOn};
  HlsResult r_small = EstimateHls(Transformed(k, small));
  HlsResult r_big = EstimateHls(Transformed(k, big));
  EXPECT_GT(r_big.eval_minutes, r_small.eval_minutes);
}

TEST(HlsTest, EstimationIsDeterministic) {
  kir::Kernel k = StreamKernel();
  DesignConfig cfg;
  cfg.loops[0] = {1, 4, PipelineMode::kOn};
  HlsResult a = EstimateHls(Transformed(k, cfg));
  HlsResult b = EstimateHls(Transformed(k, cfg));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.freq_mhz, b.freq_mhz);
  EXPECT_EQ(a.eval_minutes, b.eval_minutes);
  EXPECT_EQ(a.util.lut, b.util.lut);
}

TEST(HlsTest, LocalBufferPartitioningCostsBram) {
  kir::Kernel k = WavefrontKernel();
  DesignConfig u1, u32;
  u1.loops[0] = {1, 1, PipelineMode::kOff};
  u32.loops[0] = {1, 32, PipelineMode::kOff};
  HlsResult r1 = EstimateHls(Transformed(k, u1));
  HlsResult r32 = EstimateHls(Transformed(k, u32));
  EXPECT_GT(r32.util.bram, r1.util.bram);
}

TEST(HlsTest, ExecMicrosecondsConsistent) {
  HlsResult r = EstimateHls(StreamKernel());
  EXPECT_NEAR(r.exec_us, r.cycles / r.freq_mhz, 1e-9);
}

// Parameterized sweep: cycles are monotonically non-increasing in the
// unroll factor for the streaming kernel with a wide interface.
class UnrollSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnrollSweep, MonotoneCycles) {
  kir::Kernel k = StreamKernel();
  int u = GetParam();
  DesignConfig lo, hi;
  lo.loops[0] = {1, u, PipelineMode::kOn};
  lo.buffer_bits["in"] = 512;
  lo.buffer_bits["out"] = 512;
  hi.loops[0] = {1, u * 2, PipelineMode::kOn};
  hi.buffer_bits["in"] = 512;
  hi.buffer_bits["out"] = 512;
  HlsResult r_lo = EstimateHls(Transformed(k, lo));
  HlsResult r_hi = EstimateHls(Transformed(k, hi));
  EXPECT_LE(r_hi.cycles, r_lo.cycles);
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace s2fa::hls
