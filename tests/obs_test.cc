#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/obs.h"
#include "support/thread_pool.h"
#include "tuner/result.h"

namespace s2fa::obs {
namespace {

// Every test starts from a clean, enabled obs layer and restores the
// disabled default on exit so other suites stay unaffected.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    if (!Enabled()) {
      GTEST_SKIP() << "obs layer compiled out (S2FA_ENABLE_OBS=OFF)";
    }
    Registry::Global().Reset();
    Tracer::Global().Reset();
  }
  void TearDown() override {
    Registry::Global().Reset();
    Tracer::Global().Reset();
    SetEnabled(false);
  }
};

TEST_F(ObsTest, CountersGaugesHistogramsBasics) {
  S2FA_COUNT("apples", 1);
  S2FA_COUNT("apples", 2);
  S2FA_GAUGE("level", 3.5);
  S2FA_GAUGE("level", 1.25);         // plain set: last write wins
  S2FA_GAUGE_MAX("high_water", 2.0);
  S2FA_GAUGE_MAX("high_water", 7.0);
  S2FA_GAUGE_MAX("high_water", 4.0);  // below the high-water mark
  for (int i = 1; i <= 100; ++i) {
    S2FA_OBSERVE("latency", static_cast<double>(i));
  }

  MetricsSnapshot snapshot = Registry::Global().Snapshot();
  EXPECT_EQ(snapshot.counters.at("apples"), 3);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("level"), 1.25);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("high_water"), 7.0);

  const HistogramStats& h = snapshot.histograms.at("latency");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_DOUBLE_EQ(h.mean, 50.5);
  EXPECT_DOUBLE_EQ(h.p50, 50.0);  // nearest rank over 1..100
  EXPECT_DOUBLE_EQ(h.p95, 95.0);
  EXPECT_DOUBLE_EQ(h.p99, 99.0);
}

TEST_F(ObsTest, ConcurrentUpdatesFromThreadPool) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([t] {
        for (int i = 0; i < kPerThread; ++i) {
          S2FA_COUNT("concurrent.hits", 1);
          S2FA_GAUGE_MAX("concurrent.max", static_cast<double>(t));
          S2FA_OBSERVE("concurrent.samples", 1.0);
        }
      });
    }
    pool.Wait();
  }
  MetricsSnapshot snapshot = Registry::Global().Snapshot();
  EXPECT_EQ(snapshot.counters.at("concurrent.hits"), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("concurrent.max"), kThreads - 1);
  EXPECT_EQ(snapshot.histograms.at("concurrent.samples").count,
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST_F(ObsTest, SpanNestingDepthsAndOrder) {
  {
    S2FA_SPAN("outer");
    {
      S2FA_SPAN("middle");
      { S2FA_SPAN("inner"); }
    }
  }
  // Events finish innermost-first; Events() sorts by start time, so the
  // outermost span leads.
  std::vector<SpanEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].depth, 2);
  // All on this thread, and the outer span contains the inner ones.
  EXPECT_EQ(events[0].thread_id, events[2].thread_id);
  EXPECT_GE(events[0].duration_us, events[1].duration_us);
  EXPECT_GE(events[1].duration_us, events[2].duration_us);
}

TEST_F(ObsTest, SpansFromWorkerThreadsAreCollected) {
  {
    ThreadPool pool(4);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([] { S2FA_SPAN("worker.task"); });
    }
    pool.Wait();
  }
  std::vector<SpanEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 16u);
  for (const SpanEvent& event : events) {
    EXPECT_EQ(event.name, "worker.task");
    EXPECT_EQ(event.depth, 0);
  }
}

TEST_F(ObsTest, TraceJsonlRoundTrip) {
  {
    S2FA_SPAN("a \"quoted\" name");
    { S2FA_SPAN("nested"); }
  }
  std::vector<SpanEvent> events = Tracer::Global().Events();
  std::vector<SpanEvent> parsed = ParseTraceJsonl(RenderTraceJsonl(events));
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].name, events[i].name);
    EXPECT_EQ(parsed[i].thread_id, events[i].thread_id);
    EXPECT_EQ(parsed[i].depth, events[i].depth);
    EXPECT_EQ(parsed[i].start_us, events[i].start_us);
    EXPECT_EQ(parsed[i].duration_us, events[i].duration_us);
  }
}

TEST_F(ObsTest, SummaryJsonRoundTrip) {
  S2FA_COUNT("tuner.evaluations", 42);
  S2FA_GAUGE("tuner.best_cost", 123.456);
  S2FA_OBSERVE("tuner.eval_minutes", 1.5);
  S2FA_OBSERVE("tuner.eval_minutes", 2.5);
  { S2FA_SPAN("tuner.tune"); }

  Summary summary = CaptureSummary();
  Summary parsed = ParseSummaryJson(RenderSummaryJson(summary));

  EXPECT_EQ(parsed.metrics.counters.at("tuner.evaluations"), 42);
  EXPECT_DOUBLE_EQ(parsed.metrics.gauges.at("tuner.best_cost"), 123.456);
  const HistogramStats& h = parsed.metrics.histograms.at("tuner.eval_minutes");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.min, 1.5);
  EXPECT_DOUBLE_EQ(h.max, 2.5);
  EXPECT_DOUBLE_EQ(h.mean, 2.0);
  ASSERT_EQ(parsed.spans.size(), 1u);
  EXPECT_EQ(parsed.spans[0].first, "tuner.tune");
  EXPECT_EQ(parsed.spans[0].second.count, 1u);
  EXPECT_DOUBLE_EQ(parsed.spans[0].second.total_us,
                   summary.spans[0].second.total_us);
}

TEST_F(ObsTest, SummaryTableRendersAllSections) {
  S2FA_COUNT("b2c.kernels_compiled", 1);
  S2FA_GAUGE("dse.entropy_last", 0.7);
  S2FA_OBSERVE("hls.eval_minutes", 3.0);
  { S2FA_SPAN("dse.run"); }
  std::string table = RenderSummaryTable(CaptureSummary());
  EXPECT_NE(table.find("pipeline spans"), std::string::npos);
  EXPECT_NE(table.find("dse.run"), std::string::npos);
  EXPECT_NE(table.find("b2c.kernels_compiled"), std::string::npos);
  EXPECT_NE(table.find("dse.entropy_last"), std::string::npos);
  EXPECT_NE(table.find("hls.eval_minutes"), std::string::npos);
}

TEST_F(ObsTest, MalformedJsonThrows) {
  EXPECT_THROW(ParseSummaryJson("{\"counters\": "), MalformedInput);
  EXPECT_THROW(ParseTraceJsonl("{\"name\": \"x\"} trailing"), MalformedInput);
}

TEST_F(ObsTest, RuntimeDisabledRecordsNothing) {
  SetEnabled(false);
  S2FA_COUNT("ghost", 5);
  S2FA_GAUGE("ghost_gauge", 1.0);
  S2FA_OBSERVE("ghost_hist", 1.0);
  { S2FA_SPAN("ghost_span"); }
  MetricsSnapshot snapshot = Registry::Global().Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
  EXPECT_TRUE(Tracer::Global().Events().empty());
}

TEST_F(ObsTest, SpanLatchesEnabledAtEntry) {
  std::vector<SpanEvent> events;
  {
    S2FA_SPAN("latched");
    SetEnabled(false);  // span started while enabled: still records
  }
  events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "latched");
}

TEST_F(ObsTest, DrainClearsBuffers) {
  { S2FA_SPAN("once"); }
  EXPECT_EQ(Tracer::Global().Drain().size(), 1u);
  EXPECT_TRUE(Tracer::Global().Events().empty());
}

TEST(DedupTraceTest, DropsConsecutiveEqualCosts) {
  std::vector<tuner::TracePoint> trace{
      {0.0, 10.0}, {1.0, 10.0}, {2.0, 8.0}, {3.0, 8.0}, {4.0, 8.0},
      {5.0, 3.0}};
  std::vector<tuner::TracePoint> deduped = tuner::DedupTrace(trace);
  ASSERT_EQ(deduped.size(), 3u);
  EXPECT_DOUBLE_EQ(deduped[0].time_minutes, 0.0);
  EXPECT_DOUBLE_EQ(deduped[0].best_cost, 10.0);
  EXPECT_DOUBLE_EQ(deduped[1].time_minutes, 2.0);
  EXPECT_DOUBLE_EQ(deduped[1].best_cost, 8.0);
  EXPECT_DOUBLE_EQ(deduped[2].time_minutes, 5.0);
  EXPECT_DOUBLE_EQ(deduped[2].best_cost, 3.0);
  EXPECT_TRUE(tuner::DedupTrace({}).empty());
}

}  // namespace
}  // namespace s2fa::obs
