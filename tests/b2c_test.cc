#include <gtest/gtest.h>

#include <cmath>

#include "b2c/compiler.h"
#include "jvm/assembler.h"
#include "jvm/interpreter.h"
#include "kir/analysis.h"
#include "kir/eval.h"
#include "kir/printer.h"
#include "support/rng.h"

namespace s2fa::b2c {
namespace {

using jvm::Assembler;
using jvm::ClassPool;
using jvm::Cond;
using jvm::Heap;
using jvm::Interpreter;
using jvm::MakeMethod;
using jvm::MethodSignature;
using jvm::Ref;
using jvm::Value;
using kir::Type;

// =====================================================================
// Kernel builders (the "scalac output" of small Scala lambdas)
// =====================================================================

// double call(double x) { return exp(x) * 2.0 + x; }
void DefineExpKernel(ClassPool& pool) {
  Assembler a;
  a.Load(Type::Double(), 0);
  a.InvokeStatic("java/lang/Math", "exp");
  a.DConst(2.0).DMul();
  a.Load(Type::Double(), 0).DAdd();
  a.Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double()};
  sig.ret = Type::Double();
  pool.Define("ExpKernel")
      .AddMethod(MakeMethod("call", sig, /*is_static=*/true, 2, a.Finish()));
}

// float call(FPair in) { float s = 0; for (j < 8) s += in._1[j] * in._2[j];
//                        return s; }   (dot product of two length-8 arrays)
void DefineDotKernel(ClassPool& pool) {
  jvm::Klass& pair = pool.Define("FPair");
  pair.AddField({"_1", Type::Array(Type::Float())});
  pair.AddField({"_2", Type::Array(Type::Float())});

  Assembler a;
  // locals: 0=in(ref), 1=s, 2=j, 3=v1(ref), 4=v2(ref)
  a.Load(Type::Class("FPair"), 0).GetField("FPair", "_1");
  a.Store(Type::Array(Type::Float()), 3);
  a.Load(Type::Class("FPair"), 0).GetField("FPair", "_2");
  a.Store(Type::Array(Type::Float()), 4);
  a.FConst(0.0f).Store(Type::Float(), 1);
  a.IConst(0).Store(Type::Int(), 2);
  auto head = a.NewLabel();
  auto exit = a.NewLabel();
  a.Bind(head);
  a.Load(Type::Int(), 2).IConst(8).IfICmp(Cond::kGe, exit);
  a.Load(Type::Float(), 1);
  a.Load(Type::Array(Type::Float()), 3).Load(Type::Int(), 2)
      .ALoadElem(Type::Float());
  a.Load(Type::Array(Type::Float()), 4).Load(Type::Int(), 2)
      .ALoadElem(Type::Float());
  a.FMul().FAdd().Store(Type::Float(), 1);
  a.IInc(2, 1);
  a.Goto(head);
  a.Bind(exit);
  a.Load(Type::Float(), 1).Ret(Type::Float());

  MethodSignature sig;
  sig.params = {Type::Class("FPair")};
  sig.ret = Type::Float();
  pool.Define("DotKernel")
      .AddMethod(MakeMethod("call", sig, true, 5, a.Finish()));
}

// IPair call(IPair in):   out = new IPair; out._1 = max(in._1, in._2);
//                         out._2 = (in._1 < in._2) ? in._1 : in._2;
void DefineMinMaxKernel(ClassPool& pool) {
  jvm::Klass& pair = pool.Define("IPair");
  pair.AddField({"_1", Type::Int()});
  pair.AddField({"_2", Type::Int()});

  Assembler a;
  // locals: 0=in, 1=a, 2=b, 3=out(ref)
  a.Load(Type::Class("IPair"), 0).GetField("IPair", "_1")
      .Store(Type::Int(), 1);
  a.Load(Type::Class("IPair"), 0).GetField("IPair", "_2")
      .Store(Type::Int(), 2);
  a.New("IPair").Store(Type::Class("IPair"), 3);
  a.Load(Type::Class("IPair"), 3);
  a.Load(Type::Int(), 1).Load(Type::Int(), 2)
      .Bin(Type::Int(), jvm::BinOp::kMax);
  a.PutField("IPair", "_1");
  // Value-producing if: (a < b) ? a : b.
  a.Load(Type::Class("IPair"), 3);
  auto use_b = a.NewLabel();
  auto done = a.NewLabel();
  a.Load(Type::Int(), 1).Load(Type::Int(), 2).IfICmp(Cond::kGe, use_b);
  a.Load(Type::Int(), 1).Goto(done);
  a.Bind(use_b);
  a.Load(Type::Int(), 2);
  a.Bind(done);
  a.PutField("IPair", "_2");
  a.Load(Type::Class("IPair"), 3).Ret(Type::Class("IPair"));

  MethodSignature sig;
  sig.params = {Type::Class("IPair")};
  sig.ret = Type::Class("IPair");
  pool.Define("MinMaxKernel")
      .AddMethod(MakeMethod("call", sig, true, 4, a.Finish()));
}

// Array-returning kernel with a helper method (exercises inlining and the
// local-buffer copy-out path):
//   float[] call(float[] in) {
//     float[] out = new float[8];
//     for (j < 8) out[j] = helper(in[j]);
//     return out;
//   }
//   static float helper(float x) { float y = x * x; return y + 1.0f; }
void DefineSquareKernel(ClassPool& pool) {
  jvm::Klass& k = pool.Define("SquareKernel");
  {
    Assembler a;
    a.Load(Type::Float(), 0).Load(Type::Float(), 0).FMul()
        .Store(Type::Float(), 1);
    a.Load(Type::Float(), 1).FConst(1.0f).FAdd().Ret(Type::Float());
    MethodSignature sig;
    sig.params = {Type::Float()};
    sig.ret = Type::Float();
    k.AddMethod(MakeMethod("helper", sig, true, 2, a.Finish()));
  }
  {
    Assembler a;
    // locals: 0=in(ref), 1=out(ref), 2=j
    a.IConst(8).NewArray(Type::Float()).Store(Type::Array(Type::Float()), 1);
    a.IConst(0).Store(Type::Int(), 2);
    auto head = a.NewLabel();
    auto exit = a.NewLabel();
    a.Bind(head);
    a.Load(Type::Int(), 2).IConst(8).IfICmp(Cond::kGe, exit);
    a.Load(Type::Array(Type::Float()), 1).Load(Type::Int(), 2);
    a.Load(Type::Array(Type::Float()), 0).Load(Type::Int(), 2)
        .ALoadElem(Type::Float());
    a.InvokeStatic("SquareKernel", "helper");
    a.AStoreElem(Type::Float());
    a.IInc(2, 1);
    a.Goto(head);
    a.Bind(exit);
    a.Load(Type::Array(Type::Float()), 1).Ret(Type::Array(Type::Float()));
    MethodSignature sig;
    sig.params = {Type::Array(Type::Float())};
    sig.ret = Type::Array(Type::Float());
    k.AddMethod(MakeMethod("call", sig, true, 3, a.Finish()));
  }
}

// Reduce kernel: double call(double acc, double x) { return acc + x * x; }
void DefineSumSqKernel(ClassPool& pool) {
  Assembler a;
  a.Load(Type::Double(), 0);
  a.Load(Type::Double(), 2).Load(Type::Double(), 2).DMul();
  a.DAdd().Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double(), Type::Double()};
  sig.ret = Type::Double();
  pool.Define("SumSqKernel")
      .AddMethod(MakeMethod("call", sig, true, 4, a.Finish()));
}

// =====================================================================
// Spec helpers
// =====================================================================

KernelSpec ExpSpec(std::int64_t batch = 16) {
  KernelSpec spec;
  spec.kernel_name = "exp_kernel";
  spec.klass = "ExpKernel";
  spec.input.type = Type::Double();
  spec.input.fields = {{"x", Type::Double(), 1, false}};
  spec.output.type = Type::Double();
  spec.output.fields = {{"ret", Type::Double(), 1, false}};
  spec.batch = batch;
  return spec;
}

KernelSpec DotSpec(std::int64_t batch = 8) {
  KernelSpec spec;
  spec.kernel_name = "dot_kernel";
  spec.klass = "DotKernel";
  spec.input.type = Type::Class("FPair");
  spec.input.fields = {{"_1", Type::Float(), 8, true},
                       {"_2", Type::Float(), 8, true}};
  spec.output.type = Type::Float();
  spec.output.fields = {{"ret", Type::Float(), 1, false}};
  spec.batch = batch;
  return spec;
}

KernelSpec MinMaxSpec(std::int64_t batch = 8) {
  KernelSpec spec;
  spec.kernel_name = "minmax_kernel";
  spec.klass = "MinMaxKernel";
  spec.input.type = Type::Class("IPair");
  spec.input.fields = {{"_1", Type::Int(), 1, false},
                       {"_2", Type::Int(), 1, false}};
  spec.output.type = Type::Class("IPair");
  spec.output.fields = {{"_1", Type::Int(), 1, false},
                        {"_2", Type::Int(), 1, false}};
  spec.batch = batch;
  return spec;
}

KernelSpec SquareSpec(std::int64_t batch = 4) {
  KernelSpec spec;
  spec.kernel_name = "square_kernel";
  spec.klass = "SquareKernel";
  spec.input.type = Type::Array(Type::Float());
  spec.input.fields = {{"in", Type::Float(), 8, true}};
  spec.output.type = Type::Array(Type::Float());
  spec.output.fields = {{"ret", Type::Float(), 8, true}};
  spec.batch = batch;
  return spec;
}

KernelSpec SumSqSpec(std::int64_t batch = 32) {
  KernelSpec spec;
  spec.kernel_name = "sumsq_kernel";
  spec.klass = "SumSqKernel";
  spec.pattern = kir::ParallelPattern::kReduce;
  spec.input.type = Type::Double();
  spec.input.fields = {{"x", Type::Double(), 1, false}};
  spec.output.type = Type::Double();
  spec.output.fields = {{"ret", Type::Double(), 1, false}};
  spec.batch = batch;
  return spec;
}

// =====================================================================
// Structural tests
// =====================================================================

TEST(B2CTest, ScalarMapKernelStructure) {
  ClassPool pool;
  DefineExpKernel(pool);
  kir::Kernel k = CompileKernel(pool, ExpSpec());
  EXPECT_EQ(k.name, "exp_kernel");
  EXPECT_EQ(k.pattern, kir::ParallelPattern::kMap);
  ASSERT_EQ(k.InputBuffers().size(), 1u);
  ASSERT_EQ(k.OutputBuffers().size(), 1u);
  EXPECT_EQ(k.InputBuffers()[0]->name, "in_1");
  EXPECT_EQ(k.InputBuffers()[0]->length, 16);
  EXPECT_EQ(k.InputBuffers()[0]->per_task, 1);
  EXPECT_GE(k.task_loop_id, 0);
  const kir::Stmt* task = kir::FindLoop(k.body, k.task_loop_id);
  ASSERT_NE(task, nullptr);
  EXPECT_TRUE(task->inserted_by_template());
  EXPECT_EQ(task->trip_count(), 16);
}

TEST(B2CTest, GeneratedCLooksLikePaperCode3) {
  ClassPool pool;
  DefineExpKernel(pool);
  kir::Kernel k = CompileKernel(pool, ExpSpec());
  std::string c = kir::EmitC(k);
  EXPECT_NE(c.find("void exp_kernel(int N, double *in_1, double *out_1)"),
            std::string::npos)
      << c;
  EXPECT_NE(c.find("for (int i = 0; i < 16; i++)"), std::string::npos) << c;
  EXPECT_NE(c.find("exp("), std::string::npos) << c;
}

TEST(B2CTest, TupleFlatteningCreatesOneBufferPerField) {
  ClassPool pool;
  DefineDotKernel(pool);
  kir::Kernel k = CompileKernel(pool, DotSpec());
  ASSERT_EQ(k.InputBuffers().size(), 2u);
  EXPECT_EQ(k.InputBuffers()[0]->source_field, "in._1");
  EXPECT_EQ(k.InputBuffers()[1]->source_field, "in._2");
  EXPECT_EQ(k.InputBuffers()[0]->length, 8 * 8);
  EXPECT_EQ(k.InputBuffers()[0]->per_task, 8);
}

TEST(B2CTest, InnerLoopIsMarkedReduction) {
  ClassPool pool;
  DefineDotKernel(pool);
  kir::Kernel k = CompileKernel(pool, DotSpec());
  // Two loops: task loop + the dot loop; the dot loop carries `s`.
  bool found_reduction = false;
  for (const kir::Stmt* loop : k.Loops()) {
    if (loop->loop_id() != k.task_loop_id && loop->is_reduction()) {
      found_reduction = true;
    }
  }
  EXPECT_TRUE(found_reduction);
}

TEST(B2CTest, LocalArrayBecomesLocalBufferWithZeroInit) {
  ClassPool pool;
  DefineSquareKernel(pool);
  kir::Kernel k = CompileKernel(pool, SquareSpec());
  ASSERT_EQ(k.LocalBuffers().size(), 1u);
  EXPECT_EQ(k.LocalBuffers()[0]->length, 8);
  std::string c = kir::EmitC(k);
  EXPECT_NE(c.find("static float loc1[8];"), std::string::npos) << c;
}

TEST(B2CTest, ReduceTemplateAccumulatesIntoScalar) {
  ClassPool pool;
  DefineSumSqKernel(pool);
  kir::Kernel k = CompileKernel(pool, SumSqSpec());
  ASSERT_EQ(k.OutputBuffers().size(), 1u);
  EXPECT_EQ(k.OutputBuffers()[0]->length, 1);  // one reduced value
  const kir::Stmt* task = kir::FindLoop(k.body, k.task_loop_id);
  ASSERT_NE(task, nullptr);
  // The accumulator is a double: strict IEEE ordering forbids the tree
  // rewrite, so the loop is carried but NOT marked as a reduction.
  EXPECT_FALSE(task->is_reduction());
  kir::LoopRecurrence rec = kir::AnalyzeRecurrence(*task);
  EXPECT_TRUE(rec.carried);
  std::string c = kir::EmitC(k);
  EXPECT_NE(c.find("double acc1 = 0"), std::string::npos) << c;
}

// =====================================================================
// Unsupported-pattern diagnostics (paper 3.3 contract)
// =====================================================================

TEST(B2CTest, NonConstantNewThrows) {
  ClassPool pool;
  Assembler a;
  // float[] call(float[] in) { return new float[in.length*2... ] } — here:
  // new with a runtime length (the input's first element).
  a.Load(Type::Array(Type::Float()), 0).IConst(0).ALoadElem(Type::Float());
  a.Convert(Type::Float(), Type::Int());
  a.NewArray(Type::Float());
  a.Ret(Type::Array(Type::Float()));
  MethodSignature sig;
  sig.params = {Type::Array(Type::Float())};
  sig.ret = Type::Array(Type::Float());
  pool.Define("BadAlloc")
      .AddMethod(MakeMethod("call", sig, true, 1, a.Finish()));

  KernelSpec spec = SquareSpec();
  spec.klass = "BadAlloc";
  EXPECT_THROW(CompileKernel(pool, spec), Unsupported);
}

TEST(B2CTest, NonConstantLoopBoundThrows) {
  ClassPool pool;
  Assembler a;
  // for (j < in[0]) {...} — runtime bound.
  // locals: 0=in, 1=j, 2=s
  a.FConst(0.0f).Store(Type::Float(), 2);
  a.IConst(0).Store(Type::Int(), 1);
  auto head = a.NewLabel();
  auto exit = a.NewLabel();
  a.Bind(head);
  a.Load(Type::Int(), 1);
  a.Load(Type::Array(Type::Float()), 0).IConst(0).ALoadElem(Type::Float());
  a.Convert(Type::Float(), Type::Int());
  a.IfICmp(Cond::kGe, exit);
  a.IInc(1, 1);
  a.Goto(head);
  a.Bind(exit);
  a.Load(Type::Float(), 2).Ret(Type::Float());
  MethodSignature sig;
  sig.params = {Type::Array(Type::Float())};
  sig.ret = Type::Float();
  pool.Define("BadLoop")
      .AddMethod(MakeMethod("call", sig, true, 3, a.Finish()));

  KernelSpec spec;
  spec.kernel_name = "bad";
  spec.klass = "BadLoop";
  spec.input.type = Type::Array(Type::Float());
  spec.input.fields = {{"in", Type::Float(), 8, true}};
  spec.output.type = Type::Float();
  spec.output.fields = {{"ret", Type::Float(), 1, false}};
  EXPECT_THROW(CompileKernel(pool, spec), Unsupported);
}

TEST(B2CTest, LibraryCallThrows) {
  ClassPool pool;
  Assembler a;
  a.Load(Type::Double(), 0);
  a.InvokeStatic("java/util/SomeLib", "frob");
  a.Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double()};
  sig.ret = Type::Double();
  pool.Define("LibCall")
      .AddMethod(MakeMethod("call", sig, true, 2, a.Finish()));
  KernelSpec spec = ExpSpec();
  spec.klass = "LibCall";
  // The verifier rejects the unresolvable library class before the compiler
  // can report its own Unsupported; either way the contract is an s2fa
  // Error, never a miscompile.
  EXPECT_THROW(CompileKernel(pool, spec), Error);
}

TEST(B2CTest, EarlyReturnThrows) {
  ClassPool pool;
  Assembler a;
  auto neg = a.NewLabel();
  a.Load(Type::Double(), 0).DConst(0.0).Cmp(Type::Double());
  a.If(Cond::kLt, neg);
  a.Load(Type::Double(), 0).Ret(Type::Double());  // early return
  a.Bind(neg);
  a.Load(Type::Double(), 0).Neg(Type::Double()).Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double()};
  sig.ret = Type::Double();
  pool.Define("EarlyRet")
      .AddMethod(MakeMethod("call", sig, true, 2, a.Finish()));
  KernelSpec spec = ExpSpec();
  spec.klass = "EarlyRet";
  EXPECT_THROW(CompileKernel(pool, spec), Unsupported);
}

// =====================================================================
// Functional equivalence: interpreter (JVM semantics) vs compiled IR
// =====================================================================

TEST(B2CTest, ExpKernelMatchesInterpreter) {
  ClassPool pool;
  DefineExpKernel(pool);
  KernelSpec spec = ExpSpec(16);
  kir::Kernel k = CompileKernel(pool, spec);
  kir::Evaluator ev(k);

  Rng rng(42);
  kir::BufferMap buffers;
  std::vector<double> xs;
  for (int t = 0; t < 16; ++t) {
    double x = rng.NextDouble(-2, 2);
    xs.push_back(x);
    buffers["in_1"].push_back(Value::OfDouble(x));
  }
  ev.Run({{"N", Value::OfInt(16)}}, buffers);

  Heap heap;
  Interpreter interp(pool, heap);
  for (int t = 0; t < 16; ++t) {
    double expect =
        interp
            .Invoke("ExpKernel", "call",
                    {Value::OfDouble(xs[static_cast<std::size_t>(t)])})
            .ret.AsDouble();
    EXPECT_DOUBLE_EQ(
        buffers["out_1"][static_cast<std::size_t>(t)].AsDouble(), expect);
  }
}

TEST(B2CTest, DotKernelMatchesInterpreter) {
  ClassPool pool;
  DefineDotKernel(pool);
  KernelSpec spec = DotSpec(8);
  kir::Kernel k = CompileKernel(pool, spec);
  kir::Evaluator ev(k);

  Rng rng(7);
  kir::BufferMap buffers;
  std::vector<std::vector<float>> v1(8), v2(8);
  for (int t = 0; t < 8; ++t) {
    for (int j = 0; j < 8; ++j) {
      float a = static_cast<float>(rng.NextDouble(-1, 1));
      float b = static_cast<float>(rng.NextDouble(-1, 1));
      v1[static_cast<std::size_t>(t)].push_back(a);
      v2[static_cast<std::size_t>(t)].push_back(b);
      buffers["in_1"].push_back(Value::OfFloat(a));
      buffers["in_2"].push_back(Value::OfFloat(b));
    }
  }
  ev.Run({{"N", Value::OfInt(8)}}, buffers);

  Heap heap;
  Interpreter interp(pool, heap);
  for (int t = 0; t < 8; ++t) {
    // Build the Tuple2-like object for the interpreter.
    Ref a1 = heap.NewArray(Type::Array(Type::Float()), 8);
    Ref a2 = heap.NewArray(Type::Array(Type::Float()), 8);
    for (int j = 0; j < 8; ++j) {
      heap.Get(a1).slots[static_cast<std::size_t>(j)] =
          Value::OfFloat(v1[static_cast<std::size_t>(t)]
                           [static_cast<std::size_t>(j)]);
      heap.Get(a2).slots[static_cast<std::size_t>(j)] =
          Value::OfFloat(v2[static_cast<std::size_t>(t)]
                           [static_cast<std::size_t>(j)]);
    }
    Ref pair = heap.NewInstance(Type::Class("FPair"), 2);
    heap.Get(pair).slots[0] = Value::OfRef(a1);
    heap.Get(pair).slots[1] = Value::OfRef(a2);
    float expect =
        interp.Invoke("DotKernel", "call", {Value::OfRef(pair)}).ret.AsFloat();
    EXPECT_FLOAT_EQ(
        buffers["out_1"][static_cast<std::size_t>(t)].AsFloat(), expect)
        << "task " << t;
  }
}

TEST(B2CTest, MinMaxKernelMatchesInterpreter) {
  ClassPool pool;
  DefineMinMaxKernel(pool);
  KernelSpec spec = MinMaxSpec(8);
  kir::Kernel k = CompileKernel(pool, spec);
  kir::Evaluator ev(k);

  Rng rng(99);
  kir::BufferMap buffers;
  std::vector<std::pair<int, int>> inputs;
  for (int t = 0; t < 8; ++t) {
    int x = static_cast<int>(rng.NextInt(-100, 100));
    int y = static_cast<int>(rng.NextInt(-100, 100));
    inputs.emplace_back(x, y);
    buffers["in_1"].push_back(Value::OfInt(x));
    buffers["in_2"].push_back(Value::OfInt(y));
  }
  ev.Run({{"N", Value::OfInt(8)}}, buffers);

  Heap heap;
  Interpreter interp(pool, heap);
  for (int t = 0; t < 8; ++t) {
    Ref pair = heap.NewInstance(Type::Class("IPair"), 2);
    heap.Get(pair).slots[0] =
        Value::OfInt(inputs[static_cast<std::size_t>(t)].first);
    heap.Get(pair).slots[1] =
        Value::OfInt(inputs[static_cast<std::size_t>(t)].second);
    Ref out = interp.Invoke("MinMaxKernel", "call", {Value::OfRef(pair)})
                  .ret.AsRef();
    EXPECT_EQ(buffers["out_1"][static_cast<std::size_t>(t)].AsInt(),
              heap.Get(out).slots[0].AsInt());
    EXPECT_EQ(buffers["out_2"][static_cast<std::size_t>(t)].AsInt(),
              heap.Get(out).slots[1].AsInt());
  }
}

TEST(B2CTest, SquareKernelWithInliningMatchesInterpreter) {
  ClassPool pool;
  DefineSquareKernel(pool);
  KernelSpec spec = SquareSpec(4);
  kir::Kernel k = CompileKernel(pool, spec);
  kir::Evaluator ev(k);

  Rng rng(3);
  kir::BufferMap buffers;
  std::vector<float> data;
  for (int t = 0; t < 4 * 8; ++t) {
    float v = static_cast<float>(rng.NextDouble(-3, 3));
    data.push_back(v);
    buffers["in_1"].push_back(Value::OfFloat(v));
  }
  ev.Run({{"N", Value::OfInt(4)}}, buffers);

  for (int t = 0; t < 4; ++t) {
    for (int j = 0; j < 8; ++j) {
      float x = data[static_cast<std::size_t>(t * 8 + j)];
      EXPECT_FLOAT_EQ(
          buffers["out_1"][static_cast<std::size_t>(t * 8 + j)].AsFloat(),
          x * x + 1.0f);
    }
  }
}

TEST(B2CTest, ReduceKernelMatchesNativeSum) {
  ClassPool pool;
  DefineSumSqKernel(pool);
  KernelSpec spec = SumSqSpec(32);
  kir::Kernel k = CompileKernel(pool, spec);
  kir::Evaluator ev(k);

  Rng rng(11);
  kir::BufferMap buffers;
  double expect = 0.0;
  for (int t = 0; t < 32; ++t) {
    double x = rng.NextDouble(-1, 1);
    expect += x * x;
    buffers["in_1"].push_back(Value::OfDouble(x));
  }
  ev.Run({{"N", Value::OfInt(32)}}, buffers);
  EXPECT_NEAR(buffers["out_1"][0].AsDouble(), expect, 1e-12);
}

// Property sweep: the minmax kernel agrees with the interpreter over many
// random batches (several seeds).
class MinMaxSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinMaxSweep, AgreesWithInterpreter) {
  ClassPool pool;
  DefineMinMaxKernel(pool);
  kir::Kernel k = CompileKernel(pool, MinMaxSpec(16));
  kir::Evaluator ev(k);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003 + 17);

  kir::BufferMap buffers;
  std::vector<std::pair<int, int>> inputs;
  for (int t = 0; t < 16; ++t) {
    int x = static_cast<int>(rng.NextInt(INT32_MIN / 2, INT32_MAX / 2));
    int y = static_cast<int>(rng.NextInt(INT32_MIN / 2, INT32_MAX / 2));
    inputs.emplace_back(x, y);
    buffers["in_1"].push_back(Value::OfInt(x));
    buffers["in_2"].push_back(Value::OfInt(y));
  }
  ev.Run({{"N", Value::OfInt(16)}}, buffers);
  for (int t = 0; t < 16; ++t) {
    auto [x, y] = inputs[static_cast<std::size_t>(t)];
    EXPECT_EQ(buffers["out_1"][static_cast<std::size_t>(t)].AsInt(),
              std::max(x, y));
    EXPECT_EQ(buffers["out_2"][static_cast<std::size_t>(t)].AsInt(),
              std::min(x, y));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinMaxSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace s2fa::b2c
