#include <gtest/gtest.h>

#include <cmath>

#include "apps/app.h"
#include "apps/jvm_baseline.h"
#include "apps/pipeline.h"
#include "b2c/compiler.h"
#include "blaze/runtime.h"
#include "hls/estimator.h"
#include "kir/analysis.h"
#include "kir/printer.h"
#include "merlin/transform.h"
#include "s2fa/framework.h"
#include "support/error.h"

namespace s2fa::apps {
namespace {

using blaze::Column;
using blaze::Dataset;
using jvm::Value;

constexpr std::size_t kTestRecords = 96;  // a few short of one batch

struct Workload {
  Dataset input;
  Dataset broadcast;
  bool has_broadcast = false;
};

Workload MakeWorkload(const App& app, std::uint64_t seed,
                      std::size_t records = kTestRecords) {
  Workload w;
  Rng rng(seed);
  w.input = app.make_input(records, rng);
  if (app.make_broadcast) {
    Rng brng(seed ^ 0xBCA57ULL);
    w.broadcast = app.make_broadcast(brng);
    w.has_broadcast = true;
  }
  return w;
}

double AsDouble(const Value& v) {
  if (v.is_double()) return v.AsDouble();
  if (v.is_float()) return v.AsFloat();
  if (v.is_long()) return static_cast<double>(v.AsLong());
  return v.AsInt();
}

void ExpectDatasetsMatch(const Dataset& got, const Dataset& want,
                         double rel_tol, const std::string& label) {
  ASSERT_EQ(got.num_records(), want.num_records()) << label;
  ASSERT_EQ(got.num_columns(), want.num_columns()) << label;
  for (std::size_t c = 0; c < want.num_columns(); ++c) {
    const Column& w = want.column(c);
    const Column& g = got.ColumnByField(w.field);
    ASSERT_EQ(g.data.size(), w.data.size()) << label << ":" << w.field;
    for (std::size_t n = 0; n < w.data.size(); ++n) {
      double expect = AsDouble(w.data[n]);
      double actual = AsDouble(g.data[n]);
      double tol = rel_tol * std::max(1.0, std::fabs(expect));
      EXPECT_NEAR(actual, expect, tol)
          << label << ": " << w.field << "[" << n << "]";
    }
  }
}

class AppCase : public ::testing::TestWithParam<std::string> {
 protected:
  App app_ = FindApp(GetParam());
};

TEST_P(AppCase, KernelCompilesAndValidates) {
  kir::Kernel k = b2c::CompileKernel(*app_.pool, app_.spec);
  EXPECT_NO_THROW(k.Validate());
  EXPECT_GE(k.task_loop_id, 0);
  std::string c = kir::EmitC(k);
  EXPECT_NE(c.find("void " + app_.spec.kernel_name), std::string::npos);
}

TEST_P(AppCase, JvmBaselineMatchesReference) {
  Workload w = MakeWorkload(app_, 1001);
  JvmRunResult jvm = RunOnJvm(app_, w.input,
                              w.has_broadcast ? &w.broadcast : nullptr);
  Dataset expect =
      app_.reference(w.input, w.has_broadcast ? &w.broadcast : nullptr);
  EXPECT_GT(jvm.total_ns, 0.0);
  // Map outputs are per record; reduce outputs single-record.
  ExpectDatasetsMatch(jvm.output, expect, 1e-5, app_.name + "/jvm");
}

TEST_P(AppCase, AcceleratorMatchesReference) {
  // Build with the area-conservative design (no DSE): functionality must
  // be identical regardless of the configuration.
  Artifact artifact = BuildWithConfig(*app_.pool, app_.spec,
                                      merlin::DesignConfig{});
  blaze::BlazeRuntime runtime;
  RegisterWithBlaze(runtime, app_.name, artifact);

  Workload w = MakeWorkload(app_, 2002);
  const Dataset* bc = w.has_broadcast ? &w.broadcast : nullptr;
  Dataset got = app_.spec.pattern == kir::ParallelPattern::kReduce
                    ? runtime.Reduce(app_.name, w.input, bc)
                    : runtime.Map(app_.name, w.input, bc);
  Dataset expect = app_.reference(w.input, bc);
  // Reduce combines float sums in a different order across batches; allow
  // a small relative tolerance.
  ExpectDatasetsMatch(got, expect, 1e-4, app_.name + "/accel");
}

TEST_P(AppCase, ManualConfigIsLegalAndFeasible) {
  kir::Kernel generated = b2c::CompileKernel(*app_.pool, app_.spec);
  kir::Kernel base = app_.manual_kernel ? app_.manual_kernel(generated)
                                        : generated.Clone();
  auto violations = merlin::ValidateConfig(base, app_.manual_config);
  ASSERT_TRUE(violations.empty())
      << app_.name << ": " << violations.front();
  merlin::TransformResult t = merlin::ApplyDesign(base, app_.manual_config);
  hls::HlsResult r = hls::EstimateHls(t.kernel);
  EXPECT_TRUE(r.feasible) << app_.name << ": " << r.infeasible_reason;
  EXPECT_GT(r.freq_mhz, 60.0);
}

TEST_P(AppCase, DesignSpaceIsLarge) {
  kir::Kernel k = b2c::CompileKernel(*app_.pool, app_.spec);
  tuner::DesignSpace space = tuner::BuildDesignSpace(k);
  // Table 1: spaces are far too large for exhaustive search.
  EXPECT_GT(space.Log10Cardinality(), 5.0) << app_.name;
}

TEST_P(AppCase, WorkloadsAreDeterministic) {
  Workload a = MakeWorkload(app_, 7);
  Workload b = MakeWorkload(app_, 7);
  ASSERT_EQ(a.input.num_records(), b.input.num_records());
  for (std::size_t c = 0; c < a.input.num_columns(); ++c) {
    EXPECT_TRUE(a.input.column(c).data == b.input.column(c).data);
  }
}

TEST_P(AppCase, RandomConfigsPreserveSemantics) {
  // End-to-end property: ANY legal design configuration produces the same
  // results through the Blaze runtime (paper Challenge 1: the transforms
  // must never change functionality).
  kir::Kernel generated = b2c::CompileKernel(*app_.pool, app_.spec);
  // S-W evaluates ~16k DP cells per record; keep its sweep small.
  const std::size_t records = app_.name == "S-W" ? 6 : 40;
  Workload w = MakeWorkload(app_, 3003, records);
  const Dataset* bc = w.has_broadcast ? &w.broadcast : nullptr;
  Dataset expect = app_.reference(w.input, bc);

  Rng rng(909);
  int tested = 0;
  for (int attempt = 0; attempt < 8 && tested < 3; ++attempt) {
    // Draw a random legal config (divisor tiles, bounded parallel).
    merlin::DesignConfig cfg;
    for (const kir::Stmt* loop : generated.Loops()) {
      merlin::LoopConfig lc;
      std::vector<std::int64_t> tiles{1};
      for (std::int64_t t = 2; t < loop->trip_count() && t <= 64; ++t) {
        if (loop->trip_count() % t == 0) tiles.push_back(t);
      }
      lc.tile = tiles[rng.NextIndex(tiles.size())];
      std::int64_t max_par =
          std::min<std::int64_t>(lc.tile > 1 ? lc.tile : loop->trip_count(),
                                 8);
      lc.parallel = rng.NextInt(1, max_par);
      lc.pipeline = static_cast<merlin::PipelineMode>(rng.NextInt(0, 2));
      cfg.loops[loop->loop_id()] = lc;
    }
    Artifact artifact;
    try {
      artifact = BuildWithConfig(*app_.pool, app_.spec, cfg);
    } catch (const Error&) {
      continue;  // infeasible draw; try another
    }
    ++tested;
    blaze::BlazeRuntime runtime;
    RegisterWithBlaze(runtime, app_.name + std::to_string(tested),
                      artifact);
    Dataset got =
        app_.spec.pattern == kir::ParallelPattern::kReduce
            ? runtime.Reduce(app_.name + std::to_string(tested), w.input, bc)
            : runtime.Map(app_.name + std::to_string(tested), w.input, bc);
    ExpectDatasetsMatch(got, expect, 1e-4,
                        app_.name + "/config" + std::to_string(tested));
  }
  EXPECT_GE(tested, 1) << "no feasible random config found";
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCase,
                         ::testing::Values("PR", "KMeans", "KNN", "LR",
                                           "SVM", "LLS", "AES", "S-W"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(AppsTest, AllAppsHaveDistinctNames) {
  auto apps = AllApps();
  ASSERT_EQ(apps.size(), 8u);
  std::set<std::string> names;
  for (const auto& app : apps) names.insert(app.name);
  EXPECT_EQ(names.size(), 8u);
}

TEST(AppsTest, FindAppThrowsOnUnknown) {
  EXPECT_THROW(FindApp("NOPE"), InvalidArgument);
}

TEST(AppsTest, LrManualKernelBreaksTheChain) {
  App lr = FindApp("LR");
  kir::Kernel generated = b2c::CompileKernel(*lr.pool, lr.spec);
  // The generated feature loop carries a non-associative chain.
  bool generated_has_serial_chain = false;
  for (const kir::Stmt* loop : generated.Loops()) {
    kir::LoopRecurrence rec = kir::AnalyzeRecurrence(*loop);
    if (rec.carried && !loop->is_reduction() &&
        loop->loop_id() != generated.task_loop_id) {
      generated_has_serial_chain = true;
    }
  }
  EXPECT_TRUE(generated_has_serial_chain);
  // The manual rewrite restores an associative reduction.
  kir::Kernel manual = lr.manual_kernel(generated);
  bool manual_has_reduction = false;
  for (const kir::Stmt* loop : manual.Loops()) {
    if (loop->is_reduction() && loop->loop_id() != manual.task_loop_id) {
      manual_has_reduction = true;
    }
  }
  EXPECT_TRUE(manual_has_reduction);
}

TEST(AppsTest, AesKernelEncryptsFipsVector) {
  // FIPS-197 appendix B: key 2b7e151628aed2a6abf7158809cf4f3c,
  // plaintext 3243f6a8885a308d313198a2e0370734 ->
  // ciphertext 3925841d02dc09fbdc118597196a0b32.
  App aes = FindApp("AES");
  const std::array<std::uint8_t, 16> key = {
      0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const std::array<std::uint8_t, 16> plain = {
      0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
      0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const std::array<std::uint8_t, 16> cipher = {
      0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
      0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};

  Dataset broadcast = MakeAesBroadcast(key);
  Dataset input;
  {
    std::vector<std::int32_t> block(plain.begin(), plain.end());
    blaze::Column col;
    col.field = "_1";
    col.element = jvm::Type::Byte();
    col.per_record = 16;
    for (std::int32_t v : block) {
      col.data.push_back(Value::OfInt(static_cast<std::int8_t>(v)));
    }
    input.AddColumn(std::move(col));
  }
  // Through the JVM interpreter (the Scala-lambda semantics).
  JvmRunResult jvm = RunOnJvm(aes, input, &broadcast);
  const Column& out = jvm.output.ColumnByField("cipher");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out.data[static_cast<std::size_t>(i)].AsInt() & 0xff,
              cipher[static_cast<std::size_t>(i)])
        << "byte " << i;
  }
}

// ------------------------------------------------- multi-stage pipelines

// Feeds one AES stage's ciphertext back in as the next stage's plaintext.
Dataset CipherToPlain(const Dataset& d) {
  blaze::Column block = d.ColumnByField("cipher");
  block.field = "_1";
  Dataset out;
  out.AddColumn(std::move(block));
  return out;
}

struct PipelineFixture {
  App aes = FindApp("AES");
  blaze::BlazeRuntime runtime;
  Workload w;
  PipelineFixture() {
    Artifact artifact =
        BuildWithConfig(*aes.pool, aes.spec, merlin::DesignConfig{});
    RegisterWithBlaze(runtime, "aes-stage0", artifact);
    RegisterWithBlaze(runtime, "aes-stage1", artifact);
    w = MakeWorkload(aes, 3003, 64);
  }
  std::vector<PipelineStage> Stages() {
    return {{"aes-stage0", &w.broadcast, nullptr},
            {"aes-stage1", &w.broadcast, CipherToPlain}};
  }
};

TEST(PipelineTest, TwoStageAesIsDoubleEncryption) {
  PipelineFixture fx;
  PipelineResult result = RunPipeline(fx.runtime, fx.Stages(), fx.w.input);
  Dataset expect = fx.aes.reference(
      CipherToPlain(fx.aes.reference(fx.w.input, &fx.w.broadcast)),
      &fx.w.broadcast);
  ExpectDatasetsMatch(result.output, expect, 0, "aes2/pipeline");
  ASSERT_EQ(result.per_stage.size(), 2u);
  EXPECT_EQ(result.stats.invocations,
            result.per_stage[0].invocations + result.per_stage[1].invocations);
  EXPECT_DOUBLE_EQ(
      result.stats.total_us,
      result.per_stage[0].total_us + result.per_stage[1].total_us);
  EXPECT_FALSE(result.stats.degraded);
}

TEST(PipelineTest, MergedLedgerKeepsEarlyStageDegradation) {
  PipelineFixture fx;
  // Stage 0's accelerator fails every attempt; stage 1 is clean. The
  // merged ledger must still show stage 0's host fallbacks — before
  // ExecutionStats::Merge, the last stage's clean stats overwrote them.
  fx.runtime.SetFaultInjector(
      [](const std::string& id, std::size_t, int) {
        return id == "aes-stage0";
      });
  PipelineResult result = RunPipeline(fx.runtime, fx.Stages(), fx.w.input);
  EXPECT_GT(result.per_stage[0].host_fallbacks, 0u);
  EXPECT_TRUE(result.per_stage[0].degraded);
  EXPECT_EQ(result.per_stage[1].host_fallbacks, 0u);
  EXPECT_FALSE(result.per_stage[1].degraded);
  EXPECT_TRUE(result.stats.degraded);
  EXPECT_EQ(result.stats.host_fallbacks, result.per_stage[0].host_fallbacks);
  EXPECT_DOUBLE_EQ(
      result.stats.host_us,
      result.per_stage[0].host_us + result.per_stage[1].host_us);
  // Degradation changes where the stages ran, never what they computed.
  Dataset expect = fx.aes.reference(
      CipherToPlain(fx.aes.reference(fx.w.input, &fx.w.broadcast)),
      &fx.w.broadcast);
  ExpectDatasetsMatch(result.output, expect, 0, "aes2/degraded");
}

TEST(PipelineTest, ValidatesStageList) {
  PipelineFixture fx;
  EXPECT_THROW(RunPipeline(fx.runtime, {}, fx.w.input), Error);
  // An unknown stage id surfaces the registered ids (the manager's
  // unknown-accelerator error message).
  try {
    RunPipeline(fx.runtime, {{"ghost", nullptr, nullptr}}, fx.w.input);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("aes-stage0"), std::string::npos);
    EXPECT_NE(message.find("aes-stage1"), std::string::npos);
  }
}

}  // namespace
}  // namespace s2fa::apps
