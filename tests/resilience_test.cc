#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "resilience/budget.h"
#include "resilience/evaluator.h"
#include "resilience/fault.h"
#include "resilience/journal.h"

namespace s2fa::resilience {
namespace {

using merlin::DesignConfig;
using tuner::EvalOutcome;

// A distinct config per index (the resilience layer only looks at keys).
DesignConfig MakeConfig(int i) {
  DesignConfig config;
  config.loops[0].tile = 1;
  config.loops[0].parallel = 1 << (i % 5);
  config.buffer_bits["in"] = 32 << (i % 3);
  return config;
}

EvalOutcome GoodOutcome(double cost = 100.0, double minutes = 5.0) {
  EvalOutcome out;
  out.feasible = true;
  out.cost = cost;
  out.eval_minutes = minutes;
  return out;
}

ResilienceOptions NoJitterOptions() {
  ResilienceOptions options;
  options.backoff_jitter = 0;
  options.backoff_base_minutes = 0.5;
  options.backoff_multiplier = 2.0;
  return options;
}

// ------------------------------------------------------------- taxonomy

TEST(FailureTest, GarbageOutcomeDetection) {
  EXPECT_FALSE(GarbageOutcome(GoodOutcome()));

  EvalOutcome infeasible;  // a clean "no" is a valid answer, not garbage
  infeasible.feasible = false;
  infeasible.cost = tuner::kInfeasibleCost;
  infeasible.eval_minutes = 3.0;
  EXPECT_FALSE(GarbageOutcome(infeasible));

  EvalOutcome nan_cost = GoodOutcome();
  nan_cost.cost = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(GarbageOutcome(nan_cost));

  EvalOutcome negative = GoodOutcome();
  negative.cost = -1.0;
  EXPECT_TRUE(GarbageOutcome(negative));

  EvalOutcome feasible_inf = GoodOutcome();
  feasible_inf.cost = tuner::kInfeasibleCost;
  EXPECT_TRUE(GarbageOutcome(feasible_inf));

  EvalOutcome zero_minutes = GoodOutcome();
  zero_minutes.eval_minutes = 0;
  EXPECT_TRUE(GarbageOutcome(zero_minutes));

  EvalOutcome inf_minutes = GoodOutcome();
  inf_minutes.eval_minutes = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(GarbageOutcome(inf_minutes));
}

TEST(FailureTest, KindNames) {
  EXPECT_STREQ(FailureKindName(FailureKind::kNone), "none");
  EXPECT_STREQ(FailureKindName(FailureKind::kCrash), "crash");
  EXPECT_STREQ(FailureKindName(FailureKind::kTimeout), "timeout");
  EXPECT_STREQ(FailureKindName(FailureKind::kGarbageResult), "garbage");
}

// ------------------------------------------------------------ fault plan

TEST(FaultPlanTest, InactiveByDefault) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_EQ(plan.Decide("anything", 0), FailureKind::kNone);
}

TEST(FaultPlanTest, DeterministicAcrossInstancesAndCallOrder) {
  FaultPlanOptions options;
  options.crash_rate = 0.1;
  options.timeout_rate = 0.1;
  options.garbage_rate = 0.1;
  options.seed = 42;
  FaultPlan a(options), b(options);
  for (int i = 0; i < 200; ++i) {
    const std::string key = MakeConfig(i).ToString();
    // b queried in reverse attempt order: decisions are stateless.
    EXPECT_EQ(a.Decide(key, 0), b.Decide(key, 0)) << key;
    EXPECT_EQ(a.Decide(key, 3), b.Decide(key, 3)) << key;
  }
}

TEST(FaultPlanTest, RatesRoughlyRespected) {
  FaultPlanOptions options;
  options.crash_rate = 0.3;
  options.timeout_rate = 0.0;
  options.garbage_rate = 0.0;
  options.seed = 7;
  FaultPlan plan(options);
  int crashes = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (plan.Decide("key" + std::to_string(i), 0) == FailureKind::kCrash) {
      ++crashes;
    }
  }
  EXPECT_NEAR(static_cast<double>(crashes) / n, 0.3, 0.05);
}

TEST(FaultPlanTest, InstrumentInjectsEveryKind) {
  FaultPlanOptions options;
  options.seed = 5;
  // One kind at a time so the first injected failure is unambiguous.
  for (FailureKind kind : {FailureKind::kCrash, FailureKind::kTimeout,
                           FailureKind::kGarbageResult}) {
    options.crash_rate = kind == FailureKind::kCrash ? 1.0 : 0.0;
    options.timeout_rate = kind == FailureKind::kTimeout ? 1.0 : 0.0;
    options.garbage_rate = kind == FailureKind::kGarbageResult ? 1.0 : 0.0;
    FaultPlan plan(options);
    AttemptEvalFn fn = plan.Instrument(
        [](const DesignConfig&) { return GoodOutcome(); });
    if (kind == FailureKind::kCrash) {
      EXPECT_THROW(fn(MakeConfig(0), 0), InjectedCrash);
    } else if (kind == FailureKind::kTimeout) {
      EvalOutcome out = fn(MakeConfig(0), 0);
      EXPECT_TRUE(std::isinf(out.eval_minutes));
    } else {
      EvalOutcome out = fn(MakeConfig(0), 0);
      EXPECT_TRUE(std::isnan(out.cost));
    }
  }
}

TEST(FaultPlanTest, RejectsBadRates) {
  FaultPlanOptions options;
  options.crash_rate = 0.7;
  options.timeout_rate = 0.7;
  EXPECT_THROW(FaultPlan{options}, InvalidArgument);
  options.timeout_rate = -0.1;
  EXPECT_THROW(FaultPlan{options}, InvalidArgument);
}

// ----------------------------------------------------------- evaluator

TEST(ResilientEvaluatorTest, SuccessPassesThroughUnchanged) {
  ResilientEvaluator eval(
      tuner::EvalFn([](const DesignConfig&) { return GoodOutcome(42.0, 7.0); }),
      NoJitterOptions());
  EvalOutcome out = eval.Evaluate(MakeConfig(0));
  EXPECT_TRUE(out.feasible);
  EXPECT_EQ(out.cost, 42.0);
  EXPECT_EQ(out.eval_minutes, 7.0);
  ResilienceStats stats = eval.stats();
  EXPECT_EQ(stats.calls, 1u);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.successes, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(ResilientEvaluatorTest, LegitimateInfeasibleIsNotRetried) {
  int calls = 0;
  ResilientEvaluator eval(tuner::EvalFn([&](const DesignConfig&) {
                            ++calls;
                            EvalOutcome out;
                            out.feasible = false;
                            out.cost = tuner::kInfeasibleCost;
                            out.eval_minutes = 3.0;
                            return out;
                          }),
                          NoJitterOptions());
  EvalOutcome out = eval.Evaluate(MakeConfig(0));
  EXPECT_FALSE(out.feasible);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(eval.stats().retries, 0u);
  EXPECT_EQ(eval.stats().successes, 1u);
}

TEST(ResilientEvaluatorTest, CrashRetriedThenSucceeds) {
  ResilienceOptions options = NoJitterOptions();
  options.crash_charge_minutes = 1.0;
  ResilientEvaluator eval(
      AttemptEvalFn([](const DesignConfig&, int attempt) {
        if (attempt == 0) throw Error("boom");
        return GoodOutcome(10.0, 5.0);
      }),
      options);
  EvalOutcome out = eval.Evaluate(MakeConfig(0));
  EXPECT_TRUE(out.feasible);
  EXPECT_EQ(out.cost, 10.0);
  // 1.0 crash charge + 0.5 backoff + 5.0 for the clean attempt.
  EXPECT_DOUBLE_EQ(out.eval_minutes, 6.5);
  ResilienceStats stats = eval.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.successes, 1u);
  EXPECT_DOUBLE_EQ(stats.backoff_minutes, 0.5);
}

TEST(ResilientEvaluatorTest, SimulatedTimeoutChargesTheDeadline) {
  ResilienceOptions options = NoJitterOptions();
  options.deadline_minutes = 60.0;
  options.max_retries = 1;
  ResilientEvaluator eval(
      tuner::EvalFn([](const DesignConfig&) {
        return GoodOutcome(10.0, 100.0);  // always blows the deadline
      }),
      options);
  EvalOutcome out = eval.Evaluate(MakeConfig(0));
  EXPECT_FALSE(out.feasible);
  EXPECT_EQ(out.cost, tuner::kInfeasibleCost);
  // deadline + backoff(0.5) + deadline.
  EXPECT_DOUBLE_EQ(out.eval_minutes, 120.5);
  ResilienceStats stats = eval.stats();
  EXPECT_EQ(stats.timeouts, 2u);
  EXPECT_EQ(stats.exhausted, 1u);
  EXPECT_EQ(stats.successes, 0u);
}

TEST(ResilientEvaluatorTest, GarbageRetriedThenSucceeds) {
  ResilientEvaluator eval(
      AttemptEvalFn([](const DesignConfig&, int attempt) {
        if (attempt == 0) {
          EvalOutcome junk = GoodOutcome();
          junk.cost = std::numeric_limits<double>::quiet_NaN();
          junk.eval_minutes = 2.0;
          return junk;
        }
        return GoodOutcome(20.0, 4.0);
      }),
      NoJitterOptions());
  EvalOutcome out = eval.Evaluate(MakeConfig(0));
  EXPECT_TRUE(out.feasible);
  EXPECT_EQ(out.cost, 20.0);
  // 2.0 wasted on the garbage run + 0.5 backoff + 4.0 clean.
  EXPECT_DOUBLE_EQ(out.eval_minutes, 6.5);
  EXPECT_EQ(eval.stats().garbage, 1u);
}

TEST(ResilientEvaluatorTest, ExhaustionDegradesGracefully) {
  ResilienceOptions options = NoJitterOptions();
  options.max_retries = 2;
  options.crash_charge_minutes = 1.0;
  int calls = 0;
  ResilientEvaluator eval(tuner::EvalFn([&](const DesignConfig&) -> EvalOutcome {
                            ++calls;
                            throw Error("always fails");
                          }),
                          options);
  EvalOutcome out = eval.Evaluate(MakeConfig(0));
  EXPECT_FALSE(out.feasible);
  EXPECT_EQ(out.cost, tuner::kInfeasibleCost);
  EXPECT_EQ(calls, 3);  // 1 + max_retries
  // 3 crash charges + backoffs 0.5 + 1.0.
  EXPECT_DOUBLE_EQ(out.eval_minutes, 4.5);
  ResilienceStats stats = eval.stats();
  EXPECT_EQ(stats.exhausted, 1u);
  EXPECT_EQ(stats.crashes, 3u);
}

TEST(ResilientEvaluatorTest, BackoffJitterIsDeterministicAndBounded) {
  ResilienceOptions options;
  options.backoff_jitter = 0.25;
  options.backoff_base_minutes = 1.0;
  options.backoff_multiplier = 2.0;
  options.backoff_max_minutes = 8.0;
  options.max_retries = 1;
  options.crash_charge_minutes = 0.0;
  auto run = [&](int i) {
    ResilientEvaluator eval(
        tuner::EvalFn([](const DesignConfig&) -> EvalOutcome {
          throw Error("nope");
        }),
        options);
    return eval.Evaluate(MakeConfig(i)).eval_minutes;
  };
  for (int i = 0; i < 20; ++i) {
    const double a = run(i), b = run(i);
    EXPECT_DOUBLE_EQ(a, b);                      // deterministic replay
    EXPECT_GE(a, 1.0 * 0.75);                    // within jitter bounds
    EXPECT_LE(a, 1.0 * 1.25);
  }
}

TEST(ResilientEvaluatorTest, CircuitBreakerTripsAndShortCircuits) {
  ResilienceOptions options = NoJitterOptions();
  options.max_retries = 0;
  options.breaker_threshold = 2;
  options.breaker_cooldown = 3;
  options.short_circuit_minutes = 0.05;
  int calls = 0;
  ResilientEvaluator eval(tuner::EvalFn([&](const DesignConfig&) -> EvalOutcome {
                            ++calls;
                            throw Error("dead region");
                          }),
                          options);
  // Two exhausted points trip the breaker.
  eval.Evaluate(MakeConfig(0));
  eval.Evaluate(MakeConfig(1));
  EXPECT_TRUE(eval.breaker_open());
  EXPECT_EQ(eval.stats().breaker_trips, 1u);
  // The next three calls are answered without touching the evaluator.
  const int calls_before = calls;
  for (int i = 2; i < 5; ++i) {
    EvalOutcome out = eval.Evaluate(MakeConfig(i));
    EXPECT_FALSE(out.feasible);
    EXPECT_DOUBLE_EQ(out.eval_minutes, 0.05);
  }
  EXPECT_EQ(calls, calls_before);
  EXPECT_EQ(eval.stats().short_circuits, 3u);
  // Cooldown spent: the next call is a half-open probe; it fails, so the
  // breaker re-trips immediately.
  eval.Evaluate(MakeConfig(5));
  EXPECT_EQ(calls, calls_before + 1);
  EXPECT_TRUE(eval.breaker_open());
  EXPECT_EQ(eval.stats().breaker_trips, 2u);
}

TEST(ResilientEvaluatorTest, CircuitBreakerClosesOnSuccessfulProbe) {
  ResilienceOptions options = NoJitterOptions();
  options.max_retries = 0;
  options.breaker_threshold = 1;
  options.breaker_cooldown = 1;
  int failures_left = 1;
  ResilientEvaluator eval(tuner::EvalFn([&](const DesignConfig&) {
                            if (failures_left-- > 0) throw Error("flaky");
                            return GoodOutcome();
                          }),
                          options);
  eval.Evaluate(MakeConfig(0));  // trips (threshold 1)
  EXPECT_TRUE(eval.breaker_open());
  eval.Evaluate(MakeConfig(1));  // short-circuited; cooldown spent
  EvalOutcome probe = eval.Evaluate(MakeConfig(2));  // half-open probe: ok
  EXPECT_TRUE(probe.feasible);
  EXPECT_FALSE(eval.breaker_open());
  // Healthy again: subsequent calls evaluate normally.
  EXPECT_TRUE(eval.Evaluate(MakeConfig(3)).feasible);
  EXPECT_EQ(eval.stats().breaker_trips, 1u);
}

TEST(ResilientEvaluatorTest, WallClockWatchdogTimesOut) {
  ResilienceOptions options = NoJitterOptions();
  options.wall_timeout_ms = 40;
  options.deadline_minutes = 60.0;
  options.max_retries = 0;
  ResilientEvaluator eval(
      AttemptEvalFn([](const DesignConfig&, int) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        return GoodOutcome();
      }),
      options);
  EvalOutcome out = eval.Evaluate(MakeConfig(0));
  EXPECT_FALSE(out.feasible);
  EXPECT_EQ(eval.stats().timeouts, 1u);
  EXPECT_DOUBLE_EQ(out.eval_minutes, 60.0);  // charged the deadline
}

TEST(ResilientEvaluatorTest, DisabledLayerPropagatesExceptions) {
  ResilienceOptions options;
  options.enabled = false;
  ResilientEvaluator eval(
      tuner::EvalFn([](const DesignConfig&) -> EvalOutcome {
        throw Error("raw");
      }),
      options);
  EXPECT_THROW(eval.Evaluate(MakeConfig(0)), Error);
}

TEST(ResilientEvaluatorTest, InjectedFaultsReplayIdenticallyAcrossReruns) {
  FaultPlanOptions fopt;
  fopt.crash_rate = 0.15;
  fopt.timeout_rate = 0.15;
  fopt.garbage_rate = 0.15;
  fopt.seed = 99;
  FaultPlan plan(fopt);
  auto run = [&] {
    ResilienceOptions options;
    options.seed = 11;
    ResilientEvaluator eval(
        plan.Instrument([](const DesignConfig&) { return GoodOutcome(); }),
        options);
    std::vector<double> minutes;
    for (int i = 0; i < 60; ++i) {
      minutes.push_back(eval.Evaluate(MakeConfig(i)).eval_minutes);
    }
    ResilienceStats stats = eval.stats();
    return std::make_pair(minutes, stats);
  };
  auto [minutes_a, stats_a] = run();
  auto [minutes_b, stats_b] = run();
  EXPECT_EQ(minutes_a, minutes_b);
  EXPECT_EQ(stats_a.crashes, stats_b.crashes);
  EXPECT_EQ(stats_a.timeouts, stats_b.timeouts);
  EXPECT_EQ(stats_a.garbage, stats_b.garbage);
  EXPECT_EQ(stats_a.exhausted, stats_b.exhausted);
  // With three 15% fault modes across 60 points, some failures occurred.
  EXPECT_GT(stats_a.crashes + stats_a.timeouts + stats_a.garbage, 0u);
}

// -------------------------------------------------------------- journal

TEST(JournalTest, EntryRoundTrip) {
  JournalEntry entry;
  entry.key = "p0|{L0: tile=1 par=8 pipe=on, in: 512b}";
  entry.outcome = GoodOutcome(123.456789, 5.5);
  JournalEntry parsed = ParseJournalEntry(RenderJournalEntry(entry));
  EXPECT_EQ(parsed.key, entry.key);
  EXPECT_EQ(parsed.outcome.feasible, entry.outcome.feasible);
  EXPECT_DOUBLE_EQ(parsed.outcome.cost, entry.outcome.cost);
  EXPECT_DOUBLE_EQ(parsed.outcome.eval_minutes, entry.outcome.eval_minutes);
}

TEST(JournalTest, InfiniteCostEncodedAsNull) {
  JournalEntry entry;
  entry.key = "train|{}";
  entry.outcome.feasible = false;
  entry.outcome.cost = tuner::kInfeasibleCost;
  entry.outcome.eval_minutes = 3.0;
  const std::string line = RenderJournalEntry(entry);
  EXPECT_NE(line.find("\"cost\":null"), std::string::npos);
  JournalEntry parsed = ParseJournalEntry(line);
  EXPECT_FALSE(parsed.outcome.feasible);
  EXPECT_EQ(parsed.outcome.cost, tuner::kInfeasibleCost);
}

TEST(JournalTest, BottleneckAttributionRoundTrips) {
  JournalEntry entry;
  entry.key = "p1|{L0: par=16}";
  entry.outcome = GoodOutcome(88.25, 6.0);
  entry.outcome.bottleneck.kind = hls::BottleneckKind::kMemoryPortII;
  entry.outcome.bottleneck.quantity = 4.0;
  entry.outcome.bottleneck.margin = 1.5;
  const std::string line = RenderJournalEntry(entry);
  EXPECT_NE(line.find("\"bottleneck\":\"memory_port_ii\""),
            std::string::npos);
  JournalEntry parsed = ParseJournalEntry(line);
  EXPECT_EQ(parsed.outcome.bottleneck.kind,
            hls::BottleneckKind::kMemoryPortII);
  EXPECT_DOUBLE_EQ(parsed.outcome.bottleneck.quantity, 4.0);
  EXPECT_DOUBLE_EQ(parsed.outcome.bottleneck.margin, 1.5);

  // A kNone attribution renders as the bare legacy line, so pre-existing
  // journals and attribution-free entries stay byte-compatible.
  JournalEntry legacy;
  legacy.key = "p0|{}";
  legacy.outcome = GoodOutcome(10.0, 5.0);
  EXPECT_EQ(RenderJournalEntry(legacy).find("bneck"), std::string::npos);
  JournalEntry reparsed = ParseJournalEntry(RenderJournalEntry(legacy));
  EXPECT_EQ(reparsed.outcome.bottleneck.kind, hls::BottleneckKind::kNone);

  // An unknown bottleneck name is corruption, not a shrug.
  EXPECT_THROW(ParseJournalEntry(
                   "{\"key\":\"a\",\"feasible\":true,\"cost\":1,"
                   "\"eval_minutes\":1,\"bottleneck\":\"mystery\"}"),
               MalformedInput);
}

TEST(JournalTest, ParseRejectsMalformedLines) {
  EXPECT_THROW(ParseJournalEntry("not json"), MalformedInput);
  EXPECT_THROW(ParseJournalEntry("{\"key\":\"a\"}"), MalformedInput);
  EXPECT_THROW(ParseJournalEntry(
                   "{\"key\":\"a\",\"feasible\":true,\"cost\":1,"
                   "\"eval_minutes\":1,\"extra\":2}"),
               MalformedInput);
}

TEST(JournalTest, WrapCachesAndCounts) {
  EvalJournal journal;  // in-memory (no file)
  int calls = 0;
  tuner::EvalFn fn = journal.Wrap("p0", [&](const DesignConfig&) {
    ++calls;
    return GoodOutcome();
  });
  fn(MakeConfig(0));
  fn(MakeConfig(0));
  fn(MakeConfig(1));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(journal.hits(), 1u);
  EXPECT_EQ(journal.entries(), 2u);
}

TEST(JournalTest, ScopesIsolateIdenticalConfigs) {
  EvalJournal journal;
  int calls = 0;
  tuner::EvalFn p0 = journal.Wrap("p0", [&](const DesignConfig&) {
    ++calls;
    return GoodOutcome();
  });
  tuner::EvalFn p1 = journal.Wrap("p1", [&](const DesignConfig&) {
    ++calls;
    return GoodOutcome();
  });
  p0(MakeConfig(0));
  p1(MakeConfig(0));
  EXPECT_EQ(calls, 2);  // same config, different scope: no false sharing
}

TEST(JournalTest, PersistsAndResumes) {
  const std::string path =
      testing::TempDir() + "s2fa_journal_resume_test." +
      std::to_string(::getpid()) + ".jsonl";
  std::remove(path.c_str());
  {
    EvalJournal journal;
    journal.Open(path);
    journal.Record("p0|a", GoodOutcome(1.0, 2.0));
    journal.Record("p0|b", GoodOutcome(3.0, 4.0));
  }
  // Simulate a kill mid-append: a torn trailing line.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"key\":\"p0|c\",\"feas";
  }
  EvalJournal resumed;
  resumed.Open(path);
  EXPECT_EQ(resumed.resumed(), 2u);
  auto found = resumed.Find("p0|a");
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->cost, 1.0);
  EXPECT_FALSE(resumed.Find("p0|c").has_value());
  std::remove(path.c_str());
}

TEST(JournalTest, AppendAfterTornTailStaysRecoverable) {
  const std::string path =
      testing::TempDir() + "s2fa_journal_torn_tail_test." +
      std::to_string(::getpid()) + ".jsonl";
  std::remove(path.c_str());
  {
    EvalJournal journal;
    journal.Open(path);
    journal.Record("p0|a", GoodOutcome(1.0, 2.0));
  }
  // A kill mid-append tears the final line AND drops its newline.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"key\":\"p0|b\",\"feas";
  }
  {
    // Resume must seal the torn tail so this record lands on its own line
    // instead of gluing onto the garbage (which would lose both).
    EvalJournal journal;
    journal.Open(path);
    EXPECT_EQ(journal.resumed(), 1u);
    journal.Record("p0|c", GoodOutcome(5.0, 6.0));
  }
  EvalJournal resumed;
  resumed.Open(path);
  EXPECT_EQ(resumed.resumed(), 2u);
  EXPECT_TRUE(resumed.Find("p0|a").has_value());
  EXPECT_FALSE(resumed.Find("p0|b").has_value());
  auto found = resumed.Find("p0|c");
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->cost, 5.0);
  std::remove(path.c_str());
}

TEST(JournalTest, OpenThrowsOnUnwritablePath) {
  EvalJournal journal;
  EXPECT_THROW(journal.Open("/nonexistent-dir/journal.jsonl"), Error);
}

// ------------------------------------------------------------ env knobs

TEST(EnvKnobsTest, ReadsAndValidates) {
  setenv("S2FA_EVAL_TIMEOUT", "45.5", 1);
  setenv("S2FA_EVAL_RETRIES", "3", 1);
  setenv("S2FA_RESUME_JOURNAL", "/tmp/j.jsonl", 1);
  setenv("S2FA_FAULT_RATE", "0.25", 1);
  EnvKnobs knobs = ReadEnvKnobs();
  ASSERT_TRUE(knobs.eval_timeout_minutes.has_value());
  EXPECT_DOUBLE_EQ(*knobs.eval_timeout_minutes, 45.5);
  ASSERT_TRUE(knobs.eval_retries.has_value());
  EXPECT_EQ(*knobs.eval_retries, 3);
  ASSERT_TRUE(knobs.resume_journal.has_value());
  EXPECT_EQ(*knobs.resume_journal, "/tmp/j.jsonl");
  ASSERT_TRUE(knobs.fault_rate.has_value());
  EXPECT_DOUBLE_EQ(*knobs.fault_rate, 0.25);

  setenv("S2FA_EVAL_TIMEOUT", "garbage", 1);
  setenv("S2FA_EVAL_RETRIES", "-2", 1);
  setenv("S2FA_FAULT_RATE", "1.5", 1);
  EnvKnobs bad = ReadEnvKnobs();
  EXPECT_FALSE(bad.eval_timeout_minutes.has_value());
  EXPECT_FALSE(bad.eval_retries.has_value());
  EXPECT_FALSE(bad.fault_rate.has_value());

  unsetenv("S2FA_EVAL_TIMEOUT");
  unsetenv("S2FA_EVAL_RETRIES");
  unsetenv("S2FA_RESUME_JOURNAL");
  unsetenv("S2FA_FAULT_RATE");
  EnvKnobs none = ReadEnvKnobs();
  EXPECT_FALSE(none.eval_timeout_minutes.has_value());
  EXPECT_FALSE(none.resume_journal.has_value());
}

TEST(RetryBudgetTest, BucketStartsFullAndDrainsToDenial) {
  RetryBudgetOptions options;
  options.refill_per_sec = 0;  // burst only: no refill
  options.burst = 3;
  RetryBudget budget(options);
  EXPECT_DOUBLE_EQ(budget.TokensAt("a", 0), 3.0);
  EXPECT_TRUE(budget.TryAcquire("a", 0));
  EXPECT_TRUE(budget.TryAcquire("a", 1));
  EXPECT_TRUE(budget.TryAcquire("a", 2));
  EXPECT_FALSE(budget.TryAcquire("a", 3));
  EXPECT_FALSE(budget.TryAcquire("a", 1e9));  // never refills
  EXPECT_EQ(budget.granted(), 3u);
  EXPECT_EQ(budget.denied(), 2u);
}

TEST(RetryBudgetTest, RefillsAtRateUpToBurstCap) {
  RetryBudgetOptions options;
  options.refill_per_sec = 2.0;  // one token per 500ms simulated
  options.burst = 2;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TryAcquire("t", 0));
  EXPECT_TRUE(budget.TryAcquire("t", 0));
  EXPECT_FALSE(budget.TryAcquire("t", 0));
  // 250ms refills half a token: still denied.
  EXPECT_FALSE(budget.TryAcquire("t", 250e3));
  // Another 300ms crosses 1.0 (0.5 spent above is gone; refill resumes
  // from the post-denial level).
  EXPECT_TRUE(budget.TryAcquire("t", 550e3));
  // A long idle period caps at burst, not refill * elapsed.
  EXPECT_NEAR(budget.TokensAt("t", 100e6), 2.0, 1e-12);
}

TEST(RetryBudgetTest, KeysAreIndependent) {
  RetryBudgetOptions options;
  options.refill_per_sec = 0;
  options.burst = 1;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TryAcquire("a", 0));
  EXPECT_FALSE(budget.TryAcquire("a", 1));
  EXPECT_TRUE(budget.TryAcquire("b", 1));  // b's bucket untouched by a
}

TEST(RetryBudgetTest, ReplaysBitIdentically) {
  auto run = [] {
    RetryBudgetOptions options;
    options.refill_per_sec = 7.5;
    options.burst = 2.5;
    RetryBudget budget(options);
    std::string trace;
    for (int i = 0; i < 200; ++i) {
      trace += budget.TryAcquire(i % 3 ? "x" : "y", i * 137.0) ? '1' : '0';
    }
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST(RetryBudgetTest, RejectsInvalidOptions) {
  RetryBudgetOptions negative_refill;
  negative_refill.refill_per_sec = -1;
  EXPECT_THROW(RetryBudget{negative_refill}, InvalidArgument);
  RetryBudgetOptions tiny_burst;
  tiny_burst.burst = 0.5;
  EXPECT_THROW(RetryBudget{tiny_burst}, InvalidArgument);
}

}  // namespace
}  // namespace s2fa::resilience
