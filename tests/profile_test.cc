// Profiler + perf-ledger suite: profile-tree reconstruction from synthetic
// and real span events, the self/total invariants, Chrome-trace validity,
// ledger round-trip + comparator classification, reservoir-histogram
// exactness, and the Drain-vs-Record race.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/ledger.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace s2fa::obs {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    if (!Enabled()) GTEST_SKIP() << "obs compiled out";
    Registry::Global().Reset();
    Tracer::Global().Reset();
  }
  void TearDown() override {
    Registry::Global().Reset();
    Tracer::Global().Reset();
    SetEnabled(false);
  }
};

SpanEvent Ev(const char* name, int tid, int depth, std::uint64_t start,
             std::uint64_t dur) {
  SpanEvent e;
  e.name = name;
  e.thread_id = tid;
  e.depth = depth;
  e.start_us = start;
  e.duration_us = dur;
  return e;
}

// ------------------------------------------------------------ tree builds

TEST_F(ProfileTest, SyntheticTreeExactAttribution) {
  // root [0,100) { A [10,40) { G [15,20) }, B [50,90) }
  std::vector<SpanEvent> events = {
      Ev("root", 1, 0, 0, 100),
      Ev("A", 1, 1, 10, 30),
      Ev("G", 1, 2, 15, 5),
      Ev("B", 1, 1, 50, 40),
  };
  Profile p = BuildProfile(events);
  ASSERT_EQ(p.roots.size(), 1u);
  const ProfileNode& root = p.roots[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.count, 1u);
  EXPECT_DOUBLE_EQ(root.total_us, 100);
  EXPECT_DOUBLE_EQ(root.self_us, 30);  // 100 - (30 + 40)
  ASSERT_EQ(root.children.size(), 2u);
  // Children sorted by total time, descending.
  EXPECT_EQ(root.children[0].name, "B");
  EXPECT_DOUBLE_EQ(root.children[0].total_us, 40);
  EXPECT_DOUBLE_EQ(root.children[0].self_us, 40);
  EXPECT_EQ(root.children[1].name, "A");
  EXPECT_DOUBLE_EQ(root.children[1].self_us, 25);
  ASSERT_EQ(root.children[1].children.size(), 1u);
  EXPECT_EQ(root.children[1].children[0].name, "G");
  EXPECT_DOUBLE_EQ(root.children[1].children[0].total_us, 5);

  EXPECT_DOUBLE_EQ(p.wall_us, 100);
  EXPECT_DOUBLE_EQ(p.busy_us, 100);
  EXPECT_EQ(p.events, 4u);
  EXPECT_EQ(p.threads, 1u);

  // Flat rollup sorted by self time.
  ASSERT_EQ(p.flat.size(), 4u);
  EXPECT_EQ(p.flat[0].name, "B");
  EXPECT_DOUBLE_EQ(p.flat[0].self_us, 40);
  EXPECT_EQ(p.flat[1].name, "root");
  EXPECT_DOUBLE_EQ(p.flat[3].self_us, 5);
}

TEST_F(ProfileTest, RepeatedActivationsMergeByPath) {
  std::vector<SpanEvent> events = {
      Ev("loop", 1, 0, 0, 100),   Ev("body", 1, 1, 0, 40),
      Ev("body", 1, 1, 50, 50),   Ev("loop", 1, 0, 200, 50),
      Ev("body", 1, 1, 210, 20),
  };
  Profile p = BuildProfile(events);
  ASSERT_EQ(p.roots.size(), 1u);
  EXPECT_EQ(p.roots[0].count, 2u);
  EXPECT_DOUBLE_EQ(p.roots[0].total_us, 150);
  ASSERT_EQ(p.roots[0].children.size(), 1u);
  EXPECT_EQ(p.roots[0].children[0].count, 3u);
  EXPECT_DOUBLE_EQ(p.roots[0].children[0].total_us, 110);
  EXPECT_DOUBLE_EQ(p.roots[0].self_us, 40);
  // wall spans the gap; busy does too (one thread, one extent).
  EXPECT_DOUBLE_EQ(p.wall_us, 250);
}

TEST_F(ProfileTest, ThreadsMergePathWiseAndBusySums) {
  std::vector<SpanEvent> events = {
      Ev("work", 1, 0, 0, 100),
      Ev("inner", 1, 1, 10, 50),
      Ev("work", 2, 0, 50, 100),
      Ev("inner", 2, 1, 60, 30),
  };
  Profile p = BuildProfile(events);
  ASSERT_EQ(p.roots.size(), 1u);
  EXPECT_EQ(p.roots[0].count, 2u);
  EXPECT_DOUBLE_EQ(p.roots[0].total_us, 200);
  EXPECT_DOUBLE_EQ(p.roots[0].children[0].total_us, 80);
  EXPECT_EQ(p.threads, 2u);
  EXPECT_DOUBLE_EQ(p.wall_us, 150);   // [0, 150)
  EXPECT_DOUBLE_EQ(p.busy_us, 200);   // 100 + 100
  // Self times are disjoint per thread: their sum never exceeds busy.
  double self_sum = 0;
  for (const HotPathRow& row : p.flat) self_sum += row.self_us;
  EXPECT_LE(self_sum, p.busy_us + 1e-9);
}

TEST_F(ProfileTest, OrphanDepthBecomesRoot) {
  // Parent span never recorded (obs enabled mid-span): depth 2 with no
  // enclosing spans must still land in the profile, as a root.
  std::vector<SpanEvent> events = {Ev("deep", 7, 2, 10, 5)};
  Profile p = BuildProfile(events);
  ASSERT_EQ(p.roots.size(), 1u);
  EXPECT_EQ(p.roots[0].name, "deep");
  EXPECT_DOUBLE_EQ(p.roots[0].self_us, 5);
}

TEST_F(ProfileTest, RealScopedSpansNestAndBound) {
  {
    S2FA_SPAN("outer");
    for (int i = 0; i < 3; ++i) {
      S2FA_SPAN("mid");
      S2FA_SPAN("leaf");
    }
  }
  Profile p = BuildProfile(Tracer::Global().Drain());
  ASSERT_EQ(p.roots.size(), 1u);
  EXPECT_EQ(p.roots[0].name, "outer");
  ASSERT_EQ(p.roots[0].children.size(), 1u);
  EXPECT_EQ(p.roots[0].children[0].name, "mid");
  EXPECT_EQ(p.roots[0].children[0].count, 3u);
  // total >= sum(children) at every node, and self >= 0.
  EXPECT_GE(p.roots[0].total_us,
            p.roots[0].children[0].total_us - 1e-9);
  EXPECT_GE(p.roots[0].self_us, 0);
  double self_sum = 0;
  for (const HotPathRow& row : p.flat) self_sum += row.self_us;
  EXPECT_LE(self_sum, p.wall_us + 1e-9);  // single-threaded trace
}

TEST_F(ProfileTest, PoolSpansKeepInvariantsAcrossThreads) {
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.Submit([] {
        S2FA_SPAN("pool.task");
        S2FA_SPAN("pool.step");
      }));
    }
    for (auto& f : futures) f.get();
  }
  Profile p = BuildProfile(Tracer::Global().Drain());
  EXPECT_EQ(p.events, 32u);
  EXPECT_GE(p.threads, 1u);
  std::size_t tasks = 0;
  double self_sum = 0;
  for (const HotPathRow& row : p.flat) {
    self_sum += row.self_us;
    if (row.name == "pool.task") tasks = row.count;
  }
  EXPECT_EQ(tasks, 16u);
  EXPECT_LE(self_sum, p.busy_us + 1e-9);
}

TEST_F(ProfileTest, RenderedTableListsHotSpansAndRates) {
  std::vector<SpanEvent> events = {Ev("hot", 1, 0, 0, 900),
                                   Ev("cold", 1, 0, 900, 100)};
  Profile p = BuildProfile(events);
  std::string table = RenderHotPathTable(p, 0, /*records=*/100);
  EXPECT_NE(table.find("hot"), std::string::npos);
  EXPECT_NE(table.find("ns/rec"), std::string::npos);
  std::string top1 = RenderHotPathTable(p, 1);
  EXPECT_NE(top1.find("hot"), std::string::npos);
  EXPECT_NE(top1.find("not shown"), std::string::npos);
  std::string tree = RenderProfileTree(p);
  EXPECT_NE(tree.find("cold"), std::string::npos);
}

// --------------------------------------------------------- chrome export

TEST_F(ProfileTest, ChromeTraceIsValidJson) {
  std::vector<SpanEvent> events = {
      Ev("alpha \"quoted\"", 1, 0, 0, 100),
      Ev("beta", 2, 1, 10, 5),
  };
  json::JsonValue root = json::Parse(RenderChromeTrace(events));
  const json::JsonObject& top = root.object();
  EXPECT_EQ(top.at("displayTimeUnit").string(), "ms");
  const json::JsonArray& trace = top.at("traceEvents").array();
  ASSERT_EQ(trace.size(), 2u);
  const json::JsonObject& first = trace[0].object();
  EXPECT_EQ(first.at("name").string(), "alpha \"quoted\"");
  EXPECT_EQ(first.at("ph").string(), "X");
  EXPECT_DOUBLE_EQ(first.at("ts").number(), 0);
  EXPECT_DOUBLE_EQ(first.at("dur").number(), 100);
  EXPECT_DOUBLE_EQ(first.at("tid").number(), 1);
  EXPECT_DOUBLE_EQ(trace[1].object().at("tid").number(), 2);
}

// ----------------------------------------------------------- perf ledger

PerfLedger SampleLedger() {
  PerfLedger ledger;
  ledger.git_rev = "abc123";
  ledger.timestamp = "2026-08-08T00:00:00";
  ledger.benchmarks["BM_Alpha"] = {120.5, 1000, 0.12};
  ledger.benchmarks["BM_Beta"] = {98000.25, 64, 6.3};
  ledger.counters["blaze.batches"] = 42;
  HistogramStats h;
  h.count = 7;
  h.min = 1;
  h.max = 9;
  h.mean = 4.5;
  h.p50 = 4;
  h.p95 = 8;
  h.p99 = 9;
  ledger.histograms["svc.latency_us"] = h;
  return ledger;
}

TEST(LedgerTest, JsonRoundTripPreservesEverything) {
  PerfLedger in = SampleLedger();
  PerfLedger out = ParseLedgerJson(RenderLedgerJson(in));
  EXPECT_EQ(out.version, kPerfLedgerVersion);
  EXPECT_EQ(out.git_rev, "abc123");
  EXPECT_EQ(out.timestamp, "2026-08-08T00:00:00");
  ASSERT_EQ(out.benchmarks.size(), 2u);
  EXPECT_DOUBLE_EQ(out.benchmarks.at("BM_Alpha").ns_per_op, 120.5);
  EXPECT_DOUBLE_EQ(out.benchmarks.at("BM_Alpha").ops, 1000);
  EXPECT_DOUBLE_EQ(out.benchmarks.at("BM_Beta").wall_ms, 6.3);
  EXPECT_EQ(out.counters.at("blaze.batches"), 42);
  const HistogramStats& h = out.histograms.at("svc.latency_us");
  EXPECT_EQ(h.count, 7u);
  EXPECT_DOUBLE_EQ(h.mean, 4.5);
  EXPECT_DOUBLE_EQ(h.p99, 9);
}

TEST(LedgerTest, FileRoundTripAndTryLoad) {
  const std::string path = ::testing::TempDir() + "/ledger_rt." + std::to_string(::getpid()) + ".json";
  WriteLedgerFile(path, SampleLedger());
  PerfLedger out = LoadLedgerFile(path);
  EXPECT_EQ(out.benchmarks.size(), 2u);
  EXPECT_TRUE(TryLoadLedgerFile(path).has_value());
  EXPECT_FALSE(TryLoadLedgerFile(path + ".missing").has_value());
  std::remove(path.c_str());
}

TEST(LedgerTest, ValidationRejectsBadDocuments) {
  EXPECT_THROW(ParseLedgerJson("not json"), MalformedInput);
  EXPECT_THROW(ParseLedgerJson("{}"), MalformedInput);  // missing schema
  std::string wrong_schema = RenderLedgerJson(SampleLedger());
  wrong_schema.replace(wrong_schema.find("s2fa-perf-ledger"), 16,
                       "someone-elses-it");
  EXPECT_THROW(ParseLedgerJson(wrong_schema), MalformedInput);
  std::string wrong_version = RenderLedgerJson(SampleLedger());
  wrong_version.replace(wrong_version.find("\"version\": 1"), 12,
                        "\"version\": 9");
  EXPECT_THROW(ParseLedgerJson(wrong_version), MalformedInput);
  PerfLedger negative = SampleLedger();
  negative.benchmarks["BM_Bad"] = {-5, 0, 0};
  EXPECT_THROW(ParseLedgerJson(RenderLedgerJson(negative)), MalformedInput);
  // A present-but-corrupt file must throw, not restart the trajectory.
  const std::string path = ::testing::TempDir() + "/ledger_corrupt." + std::to_string(::getpid()) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"schema\": \"s2fa-perf-ledger\", \"version\": ", f);
  std::fclose(f);
  EXPECT_THROW(TryLoadLedgerFile(path), MalformedInput);
  std::remove(path.c_str());
}

TEST(LedgerTest, MergeOverwritesAndCarriesOver) {
  PerfLedger base = SampleLedger();
  PerfLedger update;
  update.git_rev = "def456";
  update.timestamp = "later";
  update.benchmarks["BM_Beta"] = {50, 10, 1};
  update.benchmarks["BM_Gamma"] = {7, 1, 0.1};
  update.counters["svc.requests"] = 9;
  PerfLedger merged = MergeLedgers(base, update);
  EXPECT_EQ(merged.git_rev, "def456");
  EXPECT_EQ(merged.timestamp, "later");
  EXPECT_EQ(merged.benchmarks.size(), 3u);
  EXPECT_DOUBLE_EQ(merged.benchmarks.at("BM_Alpha").ns_per_op, 120.5);
  EXPECT_DOUBLE_EQ(merged.benchmarks.at("BM_Beta").ns_per_op, 50);
  EXPECT_EQ(merged.counters.size(), 2u);
}

TEST(LedgerTest, ComparatorClassifiesAgainstThreshold) {
  PerfLedger prev, next;
  prev.benchmarks["flat"] = {100, 0, 0};
  prev.benchmarks["flat_edge"] = {100, 0, 0};
  prev.benchmarks["better"] = {100, 0, 0};
  prev.benchmarks["worse"] = {100, 0, 0};
  prev.benchmarks["gone"] = {100, 0, 0};
  next.benchmarks["flat"] = {104, 0, 0};
  next.benchmarks["flat_edge"] = {110, 0, 0};  // exactly at the threshold
  next.benchmarks["better"] = {80, 0, 0};
  next.benchmarks["worse"] = {140, 0, 0};
  next.benchmarks["fresh"] = {55, 0, 0};

  LedgerDiff diff = ComparePerfLedgers(prev, next, 0.10);
  EXPECT_EQ(diff.flat, 2u);
  EXPECT_EQ(diff.improved, 1u);
  EXPECT_EQ(diff.regressed, 1u);
  EXPECT_EQ(diff.added, 1u);
  EXPECT_EQ(diff.removed, 1u);
  EXPECT_TRUE(diff.HasRegression());
  for (const LedgerDiffEntry& e : diff.entries) {
    if (e.name == "worse") {
      EXPECT_EQ(e.kind, LedgerDiffKind::kRegressed);
      EXPECT_NEAR(e.delta, 0.40, 1e-12);
    }
    if (e.name == "flat_edge") EXPECT_EQ(e.kind, LedgerDiffKind::kFlat);
    if (e.name == "fresh") EXPECT_EQ(e.kind, LedgerDiffKind::kAdded);
  }
  std::string table = RenderLedgerDiffTable(diff);
  EXPECT_NE(table.find("regressed"), std::string::npos);
  EXPECT_NE(table.find("1 regressed"), std::string::npos);

  // Identical ledgers never regress; added/removed alone never gate.
  LedgerDiff same = ComparePerfLedgers(prev, prev, 0.10);
  EXPECT_FALSE(same.HasRegression());
  EXPECT_EQ(same.flat, prev.benchmarks.size());
  PerfLedger empty;
  EXPECT_FALSE(ComparePerfLedgers(empty, next, 0.10).HasRegression());
  EXPECT_FALSE(ComparePerfLedgers(prev, empty, 0.10).HasRegression());
}

// ---------------------------------------------------- reservoir histogram

TEST_F(ProfileTest, ReservoirKeepsExactScalarsPastTheCap) {
  const std::size_t n = 3 * kHistogramSampleCap;
  for (std::size_t i = 0; i < n; ++i) {
    Registry::Global().Observe("res.h", static_cast<double>(i));
  }
  HistogramStats h = Registry::Global().Snapshot().histograms.at("res.h");
  EXPECT_EQ(h.count, n);  // exact, not capped
  EXPECT_DOUBLE_EQ(h.min, 0);
  EXPECT_DOUBLE_EQ(h.max, static_cast<double>(n - 1));
  EXPECT_DOUBLE_EQ(h.mean, static_cast<double>(n - 1) / 2.0);
  // Percentiles come from a uniform reservoir over [0, n): they stay in
  // range and ordered even though the raw samples were dropped.
  EXPECT_GE(h.p50, h.min);
  EXPECT_LE(h.p50, h.p95);
  EXPECT_LE(h.p95, h.p99);
  EXPECT_LE(h.p99, h.max);
}

TEST_F(ProfileTest, ReservoirIsDeterministicPerSequence) {
  auto run = [] {
    Registry::Global().Reset();
    for (std::size_t i = 0; i < 2 * kHistogramSampleCap; ++i) {
      Registry::Global().Observe(
          "det.h", static_cast<double>((i * 2654435761ULL) % 100000));
    }
    return Registry::Global().Snapshot().histograms.at("det.h");
  };
  HistogramStats a = run();
  HistogramStats b = run();
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_EQ(a.count, b.count);
}

// ------------------------------------------------------------ drain race

TEST_F(ProfileTest, DrainRacingRecordLosesNothing) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  std::atomic<int> done{0};
  std::vector<SpanEvent> drained;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kThreads; ++t) {
      futures.push_back(pool.Submit([&done] {
        for (int i = 0; i < kPerThread; ++i) {
          SpanEvent e;
          e.name = "race.span";
          e.depth = 0;
          e.start_us = static_cast<std::uint64_t>(i);
          e.duration_us = 1;
          Tracer::Global().Record(std::move(e));
        }
        done.fetch_add(1);
      }));
    }
    // Drain concurrently with the writers.
    while (done.load() < kThreads) {
      std::vector<SpanEvent> batch = Tracer::Global().Drain();
      drained.insert(drained.end(), batch.begin(), batch.end());
      std::this_thread::yield();
    }
    for (auto& f : futures) f.get();
  }
  std::vector<SpanEvent> rest = Tracer::Global().Drain();
  drained.insert(drained.end(), rest.begin(), rest.end());
  EXPECT_EQ(drained.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

}  // namespace
}  // namespace s2fa::obs
