#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "kir/analysis.h"
#include "kir/arena.h"
#include "kir/eval.h"
#include "kir/kernel.h"
#include "kir/printer.h"
#include "support/rng.h"

namespace s2fa::kir {
namespace {

using jvm::Value;

// ----------------------------------------------------------------- expr

TEST(ExprTest, LiteralFactoriesEnforceTypes) {
  EXPECT_NO_THROW(Expr::IntLit(5));
  EXPECT_NO_THROW(Expr::FloatLit(2.5, Type::Double()));
  EXPECT_THROW(Expr::IntLit(5, Type::Float()), InvalidArgument);
  EXPECT_THROW(Expr::FloatLit(2.5, Type::Int()), InvalidArgument);
}

TEST(ExprTest, BinaryResultTypes) {
  auto f = Expr::Var("x", Type::Float());
  auto cmp = Expr::Binary(BinaryOp::kLt, f, Expr::FloatLit(1.0f));
  EXPECT_EQ(cmp->type(), Type::Int());
  auto add = Expr::Binary(BinaryOp::kAdd, f, Expr::FloatLit(1.0f));
  EXPECT_EQ(add->type(), Type::Float());
}

TEST(ExprTest, SubstituteVarReplacesAllUses) {
  auto i = Expr::Var("i", Type::Int());
  auto e = Expr::Binary(BinaryOp::kAdd, Expr::Binary(BinaryOp::kMul, i, i),
                        Expr::Var("j", Type::Int()));
  auto r = SubstituteVar(e, "i", Expr::IntLit(3));
  EXPECT_EQ(r->ToString(), "((3 * 3) + j)");
  // Original untouched (immutability).
  EXPECT_EQ(e->ToString(), "((i * i) + j)");
}

TEST(ExprTest, TransformSharesUnchangedSubtrees) {
  auto a = Expr::Var("a", Type::Int());
  auto b = Expr::Var("b", Type::Int());
  auto e = Expr::Binary(BinaryOp::kAdd, a, b);
  auto same = TransformExpr(
      e, [](const Expr&, const std::vector<ExprPtr>&) { return ExprPtr(); });
  EXPECT_EQ(same.get(), e.get());  // no change -> same node
}

TEST(ExprTest, VisitCountsNodes) {
  auto e = Expr::Binary(
      BinaryOp::kAdd, Expr::Var("x", Type::Int()),
      Expr::ArrayRef("buf", Type::Int(), Expr::Var("i", Type::Int())));
  int nodes = 0;
  VisitExpr(e, [&nodes](const Expr&) { ++nodes; });
  EXPECT_EQ(nodes, 4);
}

TEST(ExprTest, CallArityChecked) {
  EXPECT_THROW(
      Expr::Call(Intrinsic::kPow, {Expr::FloatLit(1.0f)}, Type::Float()),
      InvalidArgument);
  EXPECT_NO_THROW(Expr::Call(Intrinsic::kExp, {Expr::FloatLit(1.0f)},
                             Type::Float()));
}

// ----------------------------------------------------------------- stmt

TEST(StmtTest, AssignRequiresLValue) {
  auto lit = Expr::IntLit(5);
  EXPECT_THROW(Stmt::Assign(lit, lit), InvalidArgument);
  EXPECT_NO_THROW(Stmt::Assign(Expr::Var("x", Type::Int()), lit));
}

TEST(StmtTest, ForRejectsBadTripCount) {
  auto body = Stmt::Block({});
  EXPECT_THROW(Stmt::For(0, "i", 0, body), InvalidArgument);
  EXPECT_NO_THROW(Stmt::For(0, "i", 1, body));
}

TEST(StmtTest, CloneIsDeep) {
  auto inner = Stmt::For(1, "j", 4, Stmt::Block({}));
  auto outer = Stmt::For(0, "i", 8, Stmt::Block({inner}));
  outer->annotations()["ACCEL"] = "PIPELINE";
  auto copy = outer->Clone();
  copy->set_trip_count(99);
  copy->annotations()["ACCEL"] = "changed";
  FindLoop(copy, 1)->set_trip_count(77);
  EXPECT_EQ(outer->trip_count(), 8);
  EXPECT_EQ(outer->annotations().at("ACCEL"), "PIPELINE");
  EXPECT_EQ(FindLoop(outer, 1), inner.get());
  EXPECT_EQ(inner->trip_count(), 4);
}

TEST(StmtTest, CollectLoopsPreOrder) {
  auto l2 = Stmt::For(2, "k", 2, Stmt::Block({}));
  auto l1 = Stmt::For(1, "j", 3, Stmt::Block({l2}));
  auto l0 = Stmt::For(0, "i", 4, Stmt::Block({l1}));
  auto root = Stmt::Block({l0});
  auto loops = CollectLoops(root);
  ASSERT_EQ(loops.size(), 3u);
  EXPECT_EQ(loops[0]->loop_id(), 0);
  EXPECT_EQ(loops[1]->loop_id(), 1);
  EXPECT_EQ(loops[2]->loop_id(), 2);
  EXPECT_EQ(FindLoop(root, 5), nullptr);
}

// --------------------------------------------------------------- kernel

// Builds kernel: out[i] = in[i] * 2 + 1 for i in [0, 16).
Kernel MakeScaleKernel() {
  Kernel k;
  k.name = "scale";
  k.pattern = ParallelPattern::kMap;
  k.scalars.push_back({"N", Type::Int()});
  k.buffers.push_back({"in", Type::Float(), 16, BufferKind::kInput, "in._1"});
  k.buffers.push_back(
      {"out", Type::Float(), 16, BufferKind::kOutput, "ret._1"});
  auto i = Expr::Var("i", Type::Int());
  auto body = Stmt::Assign(
      Expr::ArrayRef("out", Type::Float(), i),
      Expr::Binary(BinaryOp::kAdd,
                   Expr::Binary(BinaryOp::kMul,
                                Expr::ArrayRef("in", Type::Float(), i),
                                Expr::FloatLit(2.0f)),
                   Expr::FloatLit(1.0f)));
  auto loop = Stmt::For(0, "i", 16, Stmt::Block({body}));
  loop->set_inserted_by_template(true);
  k.body = Stmt::Block({loop});
  k.task_loop_id = 0;
  return k;
}

TEST(KernelTest, ValidatePasses) {
  EXPECT_NO_THROW(MakeScaleKernel().Validate());
}

TEST(KernelTest, ValidateCatchesUndeclaredBuffer) {
  Kernel k = MakeScaleKernel();
  k.buffers.pop_back();  // drop "out"
  EXPECT_THROW(k.Validate(), MalformedInput);
}

TEST(KernelTest, ValidateCatchesDuplicateLoopIds) {
  Kernel k = MakeScaleKernel();
  auto extra = Stmt::For(0, "j", 2, Stmt::Block({}));
  k.body->stmts().push_back(extra);
  EXPECT_THROW(k.Validate(), MalformedInput);
}

TEST(KernelTest, BufferQueries) {
  Kernel k = MakeScaleKernel();
  EXPECT_NE(k.FindBuffer("in"), nullptr);
  EXPECT_EQ(k.FindBuffer("nope"), nullptr);
  EXPECT_EQ(k.InputBuffers().size(), 1u);
  EXPECT_EQ(k.OutputBuffers().size(), 1u);
  EXPECT_EQ(k.LocalBuffers().size(), 0u);
  EXPECT_EQ(k.MaxLoopId(), 0);
  EXPECT_EQ(k.FindBuffer("in")->byte_size(), 64);
}

TEST(KernelTest, CloneIsIndependent) {
  Kernel k = MakeScaleKernel();
  Kernel c = k.Clone();
  FindLoop(c.body, 0)->set_trip_count(999);
  EXPECT_EQ(FindLoop(k.body, 0)->trip_count(), 16);
}

// -------------------------------------------------------------- printer

TEST(PrinterTest, EmitsCompilableLookingC) {
  std::string c = EmitC(MakeScaleKernel());
  EXPECT_NE(c.find("void scale(int N, float *in, float *out)"),
            std::string::npos);
  EXPECT_NE(c.find("for (int i = 0; i < 16; i++)"), std::string::npos);
  EXPECT_NE(c.find("out[i] = ((in[i] * 2.0f) + 1.0f);"), std::string::npos);
  EXPECT_NE(c.find("#include <math.h>"), std::string::npos);
}

TEST(PrinterTest, EmitsPragmas) {
  Kernel k = MakeScaleKernel();
  FindLoop(k.body, 0)->annotations()["ACCEL"] = "PIPELINE flatten";
  std::string c = EmitC(k);
  EXPECT_NE(c.find("#pragma ACCEL PIPELINE flatten"), std::string::npos);
}

TEST(PrinterTest, LocalBuffersBecomeStaticArrays) {
  Kernel k = MakeScaleKernel();
  k.buffers.push_back({"scratch", Type::Int(), 64, BufferKind::kLocal, ""});
  std::string c = EmitC(k);
  EXPECT_NE(c.find("static int scratch[64];"), std::string::npos);
}

TEST(PrinterTest, UnsignedShiftExpansion) {
  auto e = Expr::Binary(BinaryOp::kUShr, Expr::Var("x", Type::Int()),
                        Expr::IntLit(3));
  std::string c = EmitExprC(e);
  EXPECT_NE(c.find("unsigned int"), std::string::npos);
}

TEST(PrinterTest, MinMaxUseMacros) {
  auto e = Expr::Binary(BinaryOp::kMax, Expr::Var("x", Type::Int()),
                        Expr::IntLit(0));
  EXPECT_EQ(EmitExprC(e), "S2FA_MAX(x, 0)");
}

TEST(PrinterTest, FloatIntrinsicsGetSuffix) {
  auto e = Expr::Call(Intrinsic::kExp, {Expr::Var("x", Type::Float())},
                      Type::Float());
  EXPECT_EQ(EmitExprC(e), "expf(x)");
  auto d = Expr::Call(Intrinsic::kExp, {Expr::Var("x", Type::Double())},
                      Type::Double());
  EXPECT_EQ(EmitExprC(d), "exp(x)");
}

// ------------------------------------------------------------ evaluator

TEST(EvalTest, RunsMapKernel) {
  Kernel k = MakeScaleKernel();
  Evaluator ev(k);
  BufferMap buffers;
  for (int i = 0; i < 16; ++i) {
    buffers["in"].push_back(Value::OfFloat(static_cast<float>(i)));
  }
  ev.Run({{"N", Value::OfInt(16)}}, buffers);
  for (int i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(buffers["out"][static_cast<std::size_t>(i)].AsFloat(),
                    2.0f * i + 1.0f);
  }
}

TEST(EvalTest, MissingInputThrows) {
  Kernel k = MakeScaleKernel();
  Evaluator ev(k);
  BufferMap buffers;
  EXPECT_THROW(ev.Run({{"N", Value::OfInt(16)}}, buffers), InvalidArgument);
}

TEST(EvalTest, MissingScalarThrows) {
  Kernel k = MakeScaleKernel();
  Evaluator ev(k);
  BufferMap buffers;
  buffers["in"].assign(16, Value::OfFloat(0.0f));
  EXPECT_THROW(ev.Run({}, buffers), InvalidArgument);
}

TEST(EvalTest, OutOfBoundsWriteThrows) {
  Kernel k = MakeScaleKernel();
  FindLoop(k.body, 0)->set_trip_count(32);  // runs past the buffers
  Evaluator ev(k);
  BufferMap buffers;
  buffers["in"].assign(16, Value::OfFloat(0.0f));
  EXPECT_THROW(ev.Run({{"N", Value::OfInt(16)}}, buffers), InvalidArgument);
}

TEST(EvalTest, ConditionalAndSelectAgree) {
  // out[i] = (in[i] > 0) ? in[i] : -in[i]  both as If and as Select.
  auto i = Expr::Var("i", Type::Int());
  auto in_i = Expr::ArrayRef("in", Type::Float(), i);
  auto out_i = Expr::ArrayRef("out", Type::Float(), i);
  auto cond = Expr::Binary(BinaryOp::kGt, in_i, Expr::FloatLit(0.0f));

  Kernel k_if;
  k_if.name = "abs_if";
  k_if.buffers.push_back({"in", Type::Float(), 8, BufferKind::kInput, ""});
  k_if.buffers.push_back({"out", Type::Float(), 8, BufferKind::kOutput, ""});
  auto then_s = Stmt::Assign(out_i, in_i);
  auto else_s = Stmt::Assign(out_i, Expr::Unary(UnaryOp::kNeg, in_i));
  k_if.body = Stmt::Block({Stmt::For(0, "i", 8,
                                     Stmt::Block({Stmt::If(cond, then_s,
                                                           else_s)}))});

  Kernel k_sel;
  k_sel.name = "abs_sel";
  k_sel.buffers = k_if.buffers;
  k_sel.body = Stmt::Block({Stmt::For(
      0, "i", 8,
      Stmt::Block({Stmt::Assign(
          out_i, Expr::Select(cond, in_i, Expr::Unary(UnaryOp::kNeg, in_i)))}))});

  Rng rng(5);
  BufferMap b1, b2;
  for (int t = 0; t < 8; ++t) {
    float v = static_cast<float>(rng.NextDouble(-5, 5));
    b1["in"].push_back(Value::OfFloat(v));
    b2["in"].push_back(Value::OfFloat(v));
  }
  Evaluator(k_if).Run({}, b1);
  Evaluator(k_sel).Run({}, b2);
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(b1["out"][static_cast<std::size_t>(t)].AsFloat(),
              b2["out"][static_cast<std::size_t>(t)].AsFloat());
    EXPECT_EQ(b1["out"][static_cast<std::size_t>(t)].AsFloat(),
              std::fabs(b1["in"][static_cast<std::size_t>(t)].AsFloat()));
  }
}

TEST(EvalTest, IntegerNarrowingOnByteBuffer) {
  Kernel k;
  k.name = "bytes";
  k.buffers.push_back({"out", Type::Byte(), 1, BufferKind::kOutput, ""});
  k.body = Stmt::Block({Stmt::Assign(
      Expr::ArrayRef("out", Type::Byte(), Expr::IntLit(0)),
      Expr::IntLit(300))});
  BufferMap buffers;
  Evaluator(k).Run({}, buffers);
  EXPECT_EQ(buffers["out"][0].AsInt(), 44);  // 300 mod 256
}

TEST(EvalTest, WideLongComparesAreExact) {
  // 2^53 and 2^53+1 are indistinguishable as doubles; Java long compares
  // must still see them as distinct (regression: comparisons used to route
  // integral operands through a double conversion).
  const std::int64_t big = std::int64_t{1} << 53;
  Kernel k;
  k.name = "longcmp";
  k.buffers.push_back({"out", Type::Int(), 2, BufferKind::kOutput, ""});
  auto a = Expr::IntLit(big, Type::Long());
  auto b = Expr::IntLit(big + 1, Type::Long());
  k.body = Stmt::Block(
      {Stmt::Assign(Expr::ArrayRef("out", Type::Int(), Expr::IntLit(0)),
                    Expr::Binary(BinaryOp::kEq, a, b)),
       Stmt::Assign(Expr::ArrayRef("out", Type::Int(), Expr::IntLit(1)),
                    Expr::Binary(BinaryOp::kLt, a, b))});
  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE(pass == 0 ? "Evaluator" : "ReferenceEvaluator");
    BufferMap buffers;
    if (pass == 0) {
      Evaluator(k).Run({}, buffers);
    } else {
      ReferenceEvaluator(k).Run({}, buffers);
    }
    EXPECT_EQ(buffers["out"][0].AsInt(), 0);  // not equal
    EXPECT_EQ(buffers["out"][1].AsInt(), 1);  // strictly less
  }
}

TEST(EvalTest, FloatMinMaxFollowJavaSemantics) {
  // Java Math.min/max: NaN propagates, and the zeros are ordered
  // (-0.0 < +0.0). fmin/fmax get both wrong.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Kernel k;
  k.name = "minmax";
  k.buffers.push_back({"out", Type::Float(), 4, BufferKind::kOutput, ""});
  auto at = [](std::int64_t i) {
    return Expr::ArrayRef("out", Type::Float(), Expr::IntLit(i));
  };
  k.body = Stmt::Block(
      {Stmt::Assign(at(0), Expr::Binary(BinaryOp::kMin, Expr::FloatLit(0.0),
                                        Expr::FloatLit(-0.0))),
       Stmt::Assign(at(1), Expr::Binary(BinaryOp::kMax, Expr::FloatLit(-0.0),
                                        Expr::FloatLit(0.0))),
       Stmt::Assign(at(2), Expr::Binary(BinaryOp::kMin, Expr::FloatLit(nan),
                                        Expr::FloatLit(1.0))),
       Stmt::Assign(at(3), Expr::Binary(BinaryOp::kMax, Expr::FloatLit(1.0),
                                        Expr::FloatLit(nan)))});
  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE(pass == 0 ? "Evaluator" : "ReferenceEvaluator");
    BufferMap buffers;
    if (pass == 0) {
      Evaluator(k).Run({}, buffers);
    } else {
      ReferenceEvaluator(k).Run({}, buffers);
    }
    EXPECT_TRUE(std::signbit(buffers["out"][0].AsFloat()));   // min(0,-0)=-0
    EXPECT_FALSE(std::signbit(buffers["out"][1].AsFloat()));  // max(-0,0)=+0
    EXPECT_TRUE(std::isnan(buffers["out"][2].AsFloat()));
    EXPECT_TRUE(std::isnan(buffers["out"][3].AsFloat()));
  }
}

TEST(EvalTest, SlotAndReferenceWalkersCountSameSteps) {
  // Both implementations charge one step per IR node visited, so the
  // runaway budget trips at the same point in either.
  Kernel k = MakeScaleKernel();
  BufferMap b1, b2;
  for (int i = 0; i < 16; ++i) {
    b1["in"].push_back(Value::OfFloat(static_cast<float>(i)));
    b2["in"].push_back(Value::OfFloat(static_cast<float>(i)));
  }
  Evaluator fast(k);
  fast.Run({{"N", Value::OfInt(16)}}, b1);
  ReferenceEvaluator ref(k);
  ref.Run({{"N", Value::OfInt(16)}}, b2);
  EXPECT_GT(fast.last_steps(), 0u);
  EXPECT_EQ(fast.last_steps(), ref.last_steps());
}

// --------------------------------------------------------------- arena

TEST(ArenaTest, FreedNodesAreReused) {
  // Warm the literal node's size class so a slab exists and the freelist
  // holds at least one chunk.
  { auto warm = Expr::IntLit(1); }
  const arena::Stats before = arena::GetStats();
  { auto e = Expr::IntLit(2); }
  const arena::Stats after = arena::GetStats();
  EXPECT_EQ(after.allocations, before.allocations + 1);
  EXPECT_EQ(after.frees, before.frees + 1);
  // Served from the freelist: no new slab memory was carved.
  EXPECT_EQ(after.slab_bytes, before.slab_bytes);
}

TEST(ArenaTest, LargeAllocationsBypassThePool) {
  const arena::Stats before = arena::GetStats();
  void* p = arena::Allocate(1 << 20);
  arena::Deallocate(p, 1 << 20);
  const arena::Stats after = arena::GetStats();
  EXPECT_EQ(after.allocations, before.allocations);
  EXPECT_EQ(after.slab_bytes, before.slab_bytes);
}

// ------------------------------------------------------------- analysis

Kernel MakeNestedKernel() {
  // for i in 8: { acc = 0; for j in 4: acc += a[i*4+j] * b[j]; out[i] = acc }
  Kernel k;
  k.name = "dot";
  k.buffers.push_back({"a", Type::Float(), 32, BufferKind::kInput, ""});
  k.buffers.push_back({"b", Type::Float(), 4, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Float(), 8, BufferKind::kOutput, ""});
  auto i = Expr::Var("i", Type::Int());
  auto j = Expr::Var("j", Type::Int());
  auto acc = Expr::Var("acc", Type::Float());
  auto prod = Expr::Binary(
      BinaryOp::kMul,
      Expr::ArrayRef("a", Type::Float(),
                     Expr::Binary(BinaryOp::kAdd,
                                  Expr::Binary(BinaryOp::kMul, i,
                                               Expr::IntLit(4)),
                                  j)),
      Expr::ArrayRef("b", Type::Float(), j));
  auto inner_body =
      Stmt::Block({Stmt::Assign(acc, Expr::Binary(BinaryOp::kAdd, acc, prod))});
  auto inner = Stmt::For(1, "j", 4, inner_body);
  inner->set_is_reduction(true);
  auto outer_body = Stmt::Block(
      {Stmt::Decl("acc", Type::Float(), Expr::FloatLit(0.0f)), inner,
       Stmt::Assign(Expr::ArrayRef("out", Type::Float(), i), acc)});
  auto outer = Stmt::For(0, "i", 8, outer_body);
  outer->set_inserted_by_template(true);
  k.body = Stmt::Block({outer});
  k.task_loop_id = 0;
  return k;
}

TEST(AnalysisTest, LoopTreeShape) {
  Kernel k = MakeNestedKernel();
  LoopTree tree = BuildLoopTree(k);
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.max_depth(), 1);
  EXPECT_EQ(tree.roots[0].loop->loop_id(), 0);
  ASSERT_EQ(tree.roots[0].children.size(), 1u);
  EXPECT_EQ(tree.roots[0].children[0].loop->loop_id(), 1);
  EXPECT_NE(tree.Find(1), nullptr);
  EXPECT_EQ(tree.Find(9), nullptr);
}

TEST(AnalysisTest, StraightLineOpsExcludeInnerLoops) {
  Kernel k = MakeNestedKernel();
  const Stmt* outer = FindLoop(k.body, 0);
  OpCounts counts = CountStraightLineOps(*outer);
  // Straight-line part of the outer body: decl init + the out[i] store.
  EXPECT_EQ(counts.mem_write, 1);
  EXPECT_EQ(counts.fp_mul, 0);  // the multiply is inside the inner loop
}

TEST(AnalysisTest, TotalOpsScaleByTripCount) {
  Kernel k = MakeNestedKernel();
  OpCounts counts = CountTotalOps(*k.body);
  // Inner loop: 1 fp mul per iteration * 4 iterations * 8 outer = 32.
  EXPECT_EQ(counts.fp_mul, 32);
  // out[i] writes: 8.
  EXPECT_EQ(counts.buffer_writes.at("out"), 8);
  EXPECT_EQ(counts.buffer_reads.at("a"), 32);
}

TEST(AnalysisTest, ReductionRecurrenceDetected) {
  Kernel k = MakeNestedKernel();
  const Stmt* inner = FindLoop(k.body, 1);
  LoopRecurrence rec = AnalyzeRecurrence(*inner);
  EXPECT_TRUE(rec.carried);
  ASSERT_FALSE(rec.carriers.empty());
  EXPECT_EQ(rec.carriers[0], "acc");
  ASSERT_FALSE(rec.cycle_exprs.empty());
}

TEST(AnalysisTest, OuterLoopNotCarriedWhenAccIsPrivate) {
  Kernel k = MakeNestedKernel();
  const Stmt* outer = FindLoop(k.body, 0);
  // acc is declared inside the outer body -> private to each i iteration.
  LoopRecurrence rec = AnalyzeRecurrence(*outer);
  EXPECT_FALSE(rec.carried);
}

TEST(AnalysisTest, WavefrontRecurrenceDetected) {
  // for i in 16: h[i] = max(h[i-0... different index], x) — model S-W row:
  // h[i] = h[i-1] + 1 (read index differs from write index).
  Kernel k;
  k.name = "wave";
  k.buffers.push_back({"h", Type::Int(), 17, BufferKind::kLocal, ""});
  auto i = Expr::Var("i", Type::Int());
  auto write_index = Expr::Binary(BinaryOp::kAdd, i, Expr::IntLit(1));
  auto body = Stmt::Block({Stmt::Assign(
      Expr::ArrayRef("h", Type::Int(), write_index),
      Expr::Binary(BinaryOp::kAdd, Expr::ArrayRef("h", Type::Int(), i),
                   Expr::IntLit(1)))});
  auto loop = Stmt::For(0, "i", 16, body);
  k.body = Stmt::Block({loop});
  LoopRecurrence rec = AnalyzeRecurrence(*loop);
  EXPECT_TRUE(rec.carried);
  EXPECT_EQ(rec.carriers[0], "h");
}

TEST(AnalysisTest, IndependentElementwiseLoopNotCarried) {
  Kernel k = MakeScaleKernel();
  LoopRecurrence rec = AnalyzeRecurrence(*FindLoop(k.body, 0));
  EXPECT_FALSE(rec.carried);
}

TEST(AnalysisTest, ExprDepthCountsComputeNodes) {
  auto x = Expr::Var("x", Type::Float());
  EXPECT_EQ(ExprDepth(x), 0);
  auto e1 = Expr::Binary(BinaryOp::kAdd, x, x);
  EXPECT_EQ(ExprDepth(e1), 1);
  auto e2 = Expr::Call(Intrinsic::kExp, {e1}, Type::Float());
  EXPECT_EQ(ExprDepth(e2), 2);
  auto leaf_heavy = Expr::ArrayRef(
      "buf", Type::Float(), Expr::Binary(BinaryOp::kAdd, x, x));
  EXPECT_EQ(ExprDepth(leaf_heavy), 1);  // index math counts, ref itself not
}

TEST(PrinterTest, IfElseEmission) {
  auto x = Expr::Var("x", Type::Int());
  auto cond = Expr::Binary(BinaryOp::kLt, x, Expr::IntLit(0));
  auto then_s = Stmt::Assign(x, Expr::IntLit(0));
  auto else_s = Stmt::Assign(x, Expr::Binary(BinaryOp::kAdd, x,
                                             Expr::IntLit(1)));
  std::string c = EmitStmtC(Stmt::If(cond, Stmt::Block({then_s}),
                                     Stmt::Block({else_s})));
  EXPECT_NE(c.find("if ((x < 0)) {"), std::string::npos) << c;
  EXPECT_NE(c.find("} else {"), std::string::npos) << c;
  EXPECT_NE(c.find("x = 0;"), std::string::npos);
  EXPECT_NE(c.find("x = (x + 1);"), std::string::npos);
}

TEST(PrinterTest, SelectEmitsTernary) {
  auto x = Expr::Var("x", Type::Float());
  auto sel = Expr::Select(
      Expr::Binary(BinaryOp::kGt, x, Expr::FloatLit(0.0f)), x,
      Expr::Unary(UnaryOp::kNeg, x));
  EXPECT_EQ(EmitExprC(sel), "((x > 0.0f) ? x : -(x))");
}

TEST(PrinterTest, DeclWithoutInitializer) {
  std::string c = EmitStmtC(Stmt::Decl("t", Type::Double(), nullptr));
  EXPECT_EQ(c, "double t;\n");
}

TEST(PrinterTest, IndentedStatements) {
  auto s = Stmt::Assign(Expr::Var("x", Type::Int()), Expr::IntLit(1));
  EXPECT_EQ(EmitStmtC(s, 4), "    x = 1;\n");
}

TEST(PrinterTest, CTypeNames) {
  EXPECT_EQ(CTypeName(Type::Byte()), "char");
  EXPECT_EQ(CTypeName(Type::Long()), "long long");
  EXPECT_EQ(CTypeName(Type::Char()), "unsigned short");
  EXPECT_THROW(CTypeName(Type::Array(Type::Int())), InvalidArgument);
}

// Property sweep: evaluator on the dot kernel matches a native dot product
// across random inputs and several sizes.
class DotEvalTest : public ::testing::TestWithParam<int> {};

TEST_P(DotEvalTest, MatchesNativeDot) {
  Kernel k = MakeNestedKernel();
  Evaluator ev(k);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  BufferMap buffers;
  std::vector<float> a(32), b(4);
  for (auto& v : a) v = static_cast<float>(rng.NextDouble(-2, 2));
  for (auto& v : b) v = static_cast<float>(rng.NextDouble(-2, 2));
  for (float v : a) buffers["a"].push_back(Value::OfFloat(v));
  for (float v : b) buffers["b"].push_back(Value::OfFloat(v));
  ev.Run({}, buffers);
  for (int i = 0; i < 8; ++i) {
    float expect = 0.0f;
    for (int j = 0; j < 4; ++j) {
      expect += a[static_cast<std::size_t>(i * 4 + j)] *
                b[static_cast<std::size_t>(j)];
    }
    EXPECT_FLOAT_EQ(
        buffers["out"][static_cast<std::size_t>(i)].AsFloat(), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DotEvalTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace s2fa::kir
