#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dse/explorer.h"
#include "hls/estimator.h"
#include "merlin/transform.h"

namespace s2fa::dse {
namespace {

using kir::BinaryOp;
using kir::BufferKind;
using kir::Expr;
using kir::Stmt;
using kir::Type;
using tuner::DesignSpace;
using tuner::EvalOutcome;
using tuner::FactorKind;
using tuner::Point;

// The same nested reduce kernel used across tuner tests.
kir::Kernel NestedKernel() {
  kir::Kernel k;
  k.name = "nested";
  k.buffers.push_back({"in", Type::Float(), 4096, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Float(), 64, BufferKind::kOutput, ""});
  auto i = Expr::Var("i", Type::Int());
  auto j = Expr::Var("j", Type::Int());
  auto acc = Expr::Var("acc", Type::Float());
  auto inner = Stmt::For(
      1, "j", 64,
      Stmt::Block({Stmt::Assign(
          acc,
          Expr::Binary(
              BinaryOp::kAdd, acc,
              Expr::Binary(
                  BinaryOp::kMul,
                  Expr::ArrayRef(
                      "in", Type::Float(),
                      Expr::Binary(BinaryOp::kAdd,
                                   Expr::Binary(BinaryOp::kMul, i,
                                                Expr::IntLit(64)),
                                   j)),
                  Expr::FloatLit(1.5f))))}));
  inner->set_is_reduction(true);
  auto outer = Stmt::For(
      0, "i", 64,
      Stmt::Block({Stmt::Decl("acc", Type::Float(), Expr::FloatLit(0.0f)),
                   inner,
                   Stmt::Assign(Expr::ArrayRef("out", Type::Float(), i),
                                acc)}));
  outer->set_inserted_by_template(true);
  k.body = Stmt::Block({outer});
  k.task_loop_id = 0;
  return k;
}

// Real Merlin+HLS evaluation chain.
tuner::EvalFn HlsEval(const kir::Kernel& kernel) {
  return [kernel](const merlin::DesignConfig& cfg) -> EvalOutcome {
    EvalOutcome out;
    try {
      merlin::TransformResult t = merlin::ApplyDesign(kernel, cfg);
      hls::HlsResult r = hls::EstimateHls(t.kernel);
      out.feasible = r.feasible;
      out.cost = r.exec_us;
      out.eval_minutes = r.eval_minutes;
    } catch (const InvalidArgument&) {
      out.feasible = false;  // illegal factor combination: HLS run fails
      out.cost = tuner::kInfeasibleCost;
      out.eval_minutes = 3.0;
    }
    return out;
  };
}

// ------------------------------------------------------------ candidates

TEST(RulesTest, TaskLoopSchedulingComesFirst) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  auto candidates = RuleCandidateFactors(space, k);
  ASSERT_FALSE(candidates.empty());
  const auto& first = space.factors[candidates[0]];
  EXPECT_EQ(first.loop_id, k.task_loop_id);
  EXPECT_EQ(first.kind, FactorKind::kLoopPipeline);
  // Only pipeline/parallel factors are rule candidates.
  for (std::size_t c : candidates) {
    FactorKind kind = space.factors[c].kind;
    EXPECT_TRUE(kind == FactorKind::kLoopPipeline ||
                kind == FactorKind::kLoopParallel);
  }
}

// ------------------------------------------------------------ partitions

TEST(PartitionTest, SplitsOnInformativeFactor) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  std::size_t pipe0 = space.FactorIndex("L0.pipeline");
  // Synthetic: cost is entirely determined by L0.pipeline.
  Rng rng(3);
  std::vector<TrainingSample> samples;
  for (int n = 0; n < 200; ++n) {
    TrainingSample s;
    s.point = space.RandomPoint(rng);
    s.log_cost = s.point[pipe0] == 0 ? 10.0 : 2.0;
    samples.push_back(std::move(s));
  }
  PartitionOptions options;
  options.target_partitions = 2;
  auto partitions = BuildPartitions(space, RuleCandidateFactors(space, k),
                                    samples, options);
  ASSERT_EQ(partitions.size(), 2u);
  // The split must be on L0.pipeline: the two partitions' allowed pipeline
  // values differ.
  EXPECT_NE(partitions[0].space.factors[pipe0].values,
            partitions[1].space.factors[pipe0].values);
  EXPECT_NE(partitions[0].description.find("L0.pipeline"),
            std::string::npos);
}

TEST(PartitionTest, DisjointAndCovering) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  auto log_cost = [&](const Point& p) {
    EvalOutcome out = eval(space.ToConfig(p));
    return out.feasible ? std::log(out.cost) : 30.0;
  };
  Rng rng(11);
  auto samples = DrawTrainingSamples(space, 150, log_cost, rng);
  PartitionOptions options;
  options.target_partitions = 8;
  auto partitions = BuildPartitions(space, RuleCandidateFactors(space, k),
                                    samples, options);
  EXPECT_GE(partitions.size(), 2u);
  EXPECT_LE(partitions.size(), 8u);
  Rng check_rng(99);
  EXPECT_TRUE(
      PartitionsDisjointAndCovering(space, partitions, 500, check_rng));
}

TEST(PartitionTest, FlatCostsStillYieldCoreCoverage) {
  // With flat costs no split carries information gain, but the "some-for-
  // all" scheme still needs at least as many partitions as CPU cores, so
  // the builder falls back to median splits on the rule factors.
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  Rng rng(5);
  std::vector<TrainingSample> samples;
  for (int n = 0; n < 100; ++n) {
    samples.push_back({space.RandomPoint(rng), 1.0});  // constant cost
  }
  PartitionOptions options;
  options.target_partitions = 8;
  auto partitions = BuildPartitions(space, RuleCandidateFactors(space, k),
                                    samples, options);
  EXPECT_EQ(partitions.size(), 8u);
  Rng check(77);
  EXPECT_TRUE(PartitionsDisjointAndCovering(space, partitions, 300, check));
}

// ----------------------------------------------------------------- seeds

TEST(SeedTest, PerformanceSeedMatchesPaper) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::SeedPoint seed = MakePerformanceSeed(space);
  merlin::DesignConfig cfg = space.ToConfig(seed.point);
  // All loops pipelined, parallel factor 32, 512-bit buffers (paper 4.3.2).
  for (const auto& [id, lc] : cfg.loops) {
    EXPECT_EQ(lc.pipeline, merlin::PipelineMode::kOn) << "L" << id;
    EXPECT_EQ(lc.parallel, 32) << "L" << id;
  }
  for (const auto& [name, bits] : cfg.buffer_bits) {
    EXPECT_EQ(bits, 512) << name;
  }
  EXPECT_EQ(seed.label, "performance-driven");
}

TEST(SeedTest, AreaSeedIsFullyConservative) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::SeedPoint seed = MakeAreaSeed(space);
  merlin::DesignConfig cfg = space.ToConfig(seed.point);
  for (const auto& [id, lc] : cfg.loops) {
    EXPECT_EQ(lc.pipeline, merlin::PipelineMode::kOff);
    EXPECT_EQ(lc.parallel, 1);
    EXPECT_EQ(lc.tile, 1);
  }
  for (const auto& [name, bits] : cfg.buffer_bits) {
    EXPECT_EQ(bits, 32);  // element width
  }
}

TEST(SeedTest, AreaSeedIsFeasibleUnderHls) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::SeedPoint seed = MakeAreaSeed(space);
  EvalOutcome out = HlsEval(k)(space.ToConfig(seed.point));
  EXPECT_TRUE(out.feasible);  // the paper's guarantee for the conservative seed
}

TEST(SeedTest, SeedsProjectIntoRestrictedPartition) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  // Restrict L0.parallel to {8, 16} to force projection.
  DesignSpace restricted = space;
  std::size_t par0 = space.FactorIndex("L0.parallel");
  restricted.factors[par0].values = {8, 16};
  tuner::SeedPoint perf = MakePerformanceSeed(restricted);
  merlin::DesignConfig cfg = restricted.ToConfig(perf.point);
  EXPECT_EQ(cfg.loops.at(0).parallel, 16);  // nearest to 32
  tuner::SeedPoint area = MakeAreaSeed(restricted);
  merlin::DesignConfig acfg = restricted.ToConfig(area.point);
  EXPECT_EQ(acfg.loops.at(0).parallel, 8);  // nearest to 1
}

TEST(SeedTest, EquidistantProjectionPrefersLowerValue) {
  // Regression: with two allowed values equidistant from the desired one,
  // the projection must resolve toward the LOWER value (cheaper in area,
  // never worse for feasibility). The old scan kept whichever value came
  // first in the list, so the answer depended on value order.
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  DesignSpace restricted = space;
  std::size_t par0 = space.FactorIndex("L0.parallel");
  // Performance seed wants parallel 32; 16 and 48 are both 16 away.
  restricted.factors[par0].values = {48, 16};  // higher first on purpose
  tuner::SeedPoint perf = MakePerformanceSeed(restricted);
  EXPECT_EQ(restricted.ToConfig(perf.point).loops.at(0).parallel, 16);
  restricted.factors[par0].values = {16, 48};
  perf = MakePerformanceSeed(restricted);
  EXPECT_EQ(restricted.ToConfig(perf.point).loops.at(0).parallel, 16);
}

// -------------------------------------------------------------- stopping

TEST(StoppingTest, EntropyOfEmptyDatabaseIsZero) {
  tuner::ResultDatabase db;
  EXPECT_EQ(UphillEntropy(db, 4), 0.0);
}

TEST(StoppingTest, EntropyReflectsUphillDistribution) {
  tuner::ResultDatabase db;
  // Mutating factor 0 always improves, factor 1 never: low entropy.
  Point base{0, 0};
  db.Add(base, 100.0, true, 1.0, 0);
  double cost = 100.0;
  for (int k = 0; k < 10; ++k) {
    cost -= 5;
    Point p = base;
    p[0] = static_cast<std::size_t>(k % 2);
    base = p;
    db.Add(p, cost, true, 1.0 + k, 0);
  }
  double h = UphillEntropy(db, 2);
  EXPECT_GE(h, 0.0);
  EXPECT_LT(h, 1.0);
}

TEST(StoppingTest, EntropyStopFiresOnConvergedSearch) {
  auto stop = MakeEntropyStop(3, {.theta = 0.05, .patience = 3,
                                  .min_records = 8});
  tuner::ResultDatabase db;
  // A search that stopped improving: entropy stays constant.
  Point p{0, 0, 0};
  db.Add(p, 10.0, true, 1.0, 0);
  bool fired = false;
  for (int k = 0; k < 30 && !fired; ++k) {
    Point q = p;
    q[static_cast<std::size_t>(k) % 3] ^= 1u;
    db.Add(q, 50.0, true, 2.0 + k, 0);  // never uphill
    fired = stop(db);
  }
  EXPECT_TRUE(fired);
}

TEST(StoppingTest, EntropyStopWaitsForMinRecords) {
  auto stop = MakeEntropyStop(3, {.theta = 1.0, .patience = 1,
                                  .min_records = 50});
  tuner::ResultDatabase db;
  db.Add({0, 0, 0}, 10.0, true, 1.0, 0);
  db.Add({1, 0, 0}, 9.0, true, 2.0, 0);
  EXPECT_FALSE(stop(db));
}

TEST(StoppingTest, EntropyPinnedForParentAttributedSequence) {
  // Regression pin for the changed_factors fix: with explicit parents the
  // mutation distribution — and therefore the entropy the stopping
  // criterion reads — differs from the legacy prev-record diff, which in a
  // parallel batch compared against another technique's proposal.
  tuner::Point a{0, 0, 0};
  tuner::Point b{1, 0, 0};
  tuner::Point c{1, 1, 0};
  tuner::Point d{2, 0, 0};

  tuner::ResultDatabase parented;
  parented.Add(a, 10.0, true, 1.0, 0, nullptr);
  parented.Add(b, 8.0, true, 2.0, 0, &a);   // {0}, uphill
  parented.Add(c, 6.0, true, 3.0, 0, &b);   // {1}, uphill
  parented.Add(d, 9.0, true, 4.0, 1, &a);   // {0}, downhill
  // mutated[0]=2 uphill[0]=1 -> p=1/2; mutated[1]=1 uphill[1]=1 -> p=1.
  EXPECT_NEAR(UphillEntropy(parented, 3), std::log(2.0) / 2.0, 1e-12);

  tuner::ResultDatabase legacy;
  legacy.Add(a, 10.0, true, 1.0, 0);
  legacy.Add(b, 8.0, true, 2.0, 0);   // vs a: {0}, uphill
  legacy.Add(c, 6.0, true, 3.0, 0);   // vs b: {1}, uphill
  legacy.Add(d, 9.0, true, 4.0, 1);   // vs c: {0,1}, downhill — d's factor-1
                                      // "mutation" is an artifact of the
                                      // prev record, not of d's proposal
  // mutated[0]=2 uphill[0]=1; mutated[1]=2 uphill[1]=1 -> both p=1/2.
  EXPECT_NEAR(UphillEntropy(legacy, 3), std::log(2.0), 1e-12);
}

TEST(StoppingTest, EntropyDeltaComparisonToleratesFloatNoise) {
  // Regression: the paper's criterion is delta <= theta, but the entropy
  // is a sum of p*log(p) terms whose rounding can leave a delta a few ULP
  // above a theta it mathematically equals — the strict comparison then
  // never fires and the partition burns its whole budget. The comparison
  // must absorb that noise without accepting genuinely larger deltas.
  const double theta = 0.05;
  EXPECT_TRUE(EntropyDeltaConverged(theta, theta));
  // One ULP above theta: mathematically equal, pre-fix rejected.
  EXPECT_TRUE(EntropyDeltaConverged(std::nextafter(theta, 1.0), theta));
  EXPECT_TRUE(
      EntropyDeltaConverged(theta + 0.5 * kEntropyThetaSlack * theta, theta));
  // A real exceedance still fails.
  EXPECT_FALSE(EntropyDeltaConverged(theta * 1.01, theta));
  EXPECT_FALSE(EntropyDeltaConverged(theta + 1e-6, theta));
}

TEST(StoppingTest, EntropyStopIterationPinnedForFixedSequence) {
  // Pins the exact iteration the entropy stop fires on for a fixed record
  // sequence, so any change to the comparison (or the slack) shows up as
  // a test diff instead of a silent schedule shift.
  auto stop = MakeEntropyStop(3, {.theta = 0.05, .patience = 3,
                                  .min_records = 8});
  tuner::ResultDatabase db;
  Point p{0, 0, 0};
  db.Add(p, 10.0, true, 1.0, 0);
  int fired_at = -1;
  for (int k = 0; k < 30 && fired_at < 0; ++k) {
    Point q = p;
    q[static_cast<std::size_t>(k) % 3] ^= 1u;
    db.Add(q, 50.0, true, 2.0 + k, 0);  // never uphill
    if (stop(db)) fired_at = k;
  }
  // 8 records exist after k = 6; the entropy is flat (no uphill moves), so
  // the patience window is already saturated and the stop fires on the
  // first eligible check.
  EXPECT_EQ(fired_at, 6);
}

TEST(StoppingTest, NoImprovementStopCountsStaleIterations) {
  auto stop = MakeNoImprovementStop(3);
  tuner::ResultDatabase db;
  db.Add({0}, 10.0, true, 1.0, 0);
  EXPECT_FALSE(stop(db));
  db.Add({1}, 20.0, true, 2.0, 0);  // stale 1
  EXPECT_FALSE(stop(db));
  db.Add({0}, 20.0, true, 3.0, 0);  // stale 2
  EXPECT_FALSE(stop(db));
  db.Add({1}, 20.0, true, 4.0, 0);  // stale 3
  EXPECT_TRUE(stop(db));
}

TEST(StoppingTest, NoImprovementResetOnNewBest) {
  auto stop = MakeNoImprovementStop(2);
  tuner::ResultDatabase db;
  db.Add({0}, 10.0, true, 1.0, 0);
  stop(db);
  db.Add({1}, 20.0, true, 2.0, 0);
  stop(db);
  db.Add({0}, 5.0, true, 3.0, 0);  // new best: reset
  EXPECT_FALSE(stop(db));
  db.Add({1}, 20.0, true, 4.0, 0);
  EXPECT_FALSE(stop(db));
  db.Add({1}, 20.0, true, 5.0, 0);
  EXPECT_TRUE(stop(db));
}

// -------------------------------------------------------------- explorer

TEST(ExplorerTest, S2faCompetitiveWithVanillaAndEntropyStops) {
  // NOTE: this kernel's space is tiny (~10^5.6 points), which favors the
  // vanilla tuner — the paper-scale gaps appear on the app spaces in the
  // Fig. 3 bench. Here we check sanity: S2FA lands in the same cost
  // regime and its partitions terminate themselves via entropy.
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);

  ExplorerOptions options;
  options.time_limit_minutes = 240;
  options.num_cores = 8;
  options.seed = 7;
  DseResult s2fa = RunS2faDse(space, k, eval, options);
  DseResult vanilla = RunVanillaOpenTuner(space, eval, 240, 8, 7);

  ASSERT_TRUE(s2fa.found_feasible);
  ASSERT_TRUE(vanilla.found_feasible);
  EXPECT_LE(s2fa.best_cost, vanilla.best_cost * 5.0);
  EXPECT_NEAR(vanilla.elapsed_minutes, 240.0, 30);  // vanilla runs to the cap
  EXPECT_GT(s2fa.partitions.size(), 1u);
  int entropy_stops = 0;
  for (const auto& p : s2fa.partitions) {
    if (p.result.stop_reason == "entropy criterion") ++entropy_stops;
  }
  EXPECT_GE(entropy_stops, static_cast<int>(s2fa.partitions.size()) / 2);
}

TEST(ExplorerTest, DeterministicAcrossRuns) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  ExplorerOptions options;
  options.time_limit_minutes = 120;
  options.seed = 3;
  DseResult a = RunS2faDse(space, k, eval, options);
  DseResult b = RunS2faDse(space, k, eval, options);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.elapsed_minutes, b.elapsed_minutes);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.trace.size(), b.trace.size());
}

TEST(ExplorerTest, BottleneckRosterBitIdenticalAcrossExecThreads) {
  // The determinism contract must survive the new arm: with the
  // bandit+bottleneck roster, exec_threads only changes wall-clock, never
  // the committed trajectory.
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  ExplorerOptions options;
  options.time_limit_minutes = 120;
  options.seed = 2018;
  options.techniques = {"bandit", "bottleneck"};
  options.exec_threads = 1;
  DseResult one = RunS2faDse(space, k, eval, options);
  for (int threads : {2, 8}) {
    options.exec_threads = threads;
    DseResult many = RunS2faDse(space, k, eval, options);
    EXPECT_EQ(one.best_cost, many.best_cost) << threads;
    EXPECT_EQ(one.found_feasible, many.found_feasible) << threads;
    EXPECT_EQ(one.evaluations, many.evaluations) << threads;
    ASSERT_EQ(one.trace.size(), many.trace.size()) << threads;
    for (std::size_t i = 0; i < one.trace.size(); ++i) {
      EXPECT_EQ(one.trace[i].time_minutes, many.trace[i].time_minutes);
      EXPECT_EQ(one.trace[i].best_cost, many.trace[i].best_cost);
    }
  }
}

TEST(ExplorerTest, AblationSwitchesChangeBehaviour) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);

  ExplorerOptions no_partition;
  no_partition.time_limit_minutes = 120;
  no_partition.enable_partitioning = false;
  DseResult r = RunS2faDse(space, k, eval, no_partition);
  EXPECT_EQ(r.partitions.size(), 1u);

  ExplorerOptions no_seeds;
  no_seeds.time_limit_minutes = 120;
  no_seeds.enable_seeds = false;
  DseResult r2 = RunS2faDse(space, k, eval, no_seeds);
  EXPECT_TRUE(r2.found_feasible);
}

TEST(ExplorerTest, SeededRunStartsFromGoodPoint) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  ExplorerOptions options;
  options.time_limit_minutes = 240;
  options.seed = 13;
  DseResult with_seeds = RunS2faDse(space, k, eval, options);
  options.enable_seeds = false;
  DseResult without = RunS2faDse(space, k, eval, options);
  ASSERT_TRUE(with_seeds.found_feasible);
  ASSERT_FALSE(with_seeds.trace.empty());
  ASSERT_FALSE(without.trace.empty());
  // Paper §5.2: "the QoR difference of the first explored point illustrates
  // the effectiveness of our seed generation" — the seeded run's first
  // feasible design is already far better than an unseeded random draw.
  EXPECT_LT(with_seeds.trace.front().best_cost,
            without.trace.front().best_cost);
  // Final quality stays in the same ballpark (the seeds' benefit is the
  // head start, not a guaranteed better endpoint on a tiny space).
  EXPECT_LE(with_seeds.best_cost, without.best_cost * 1.15);
}

TEST(ExplorerTest, FcfsScheduleRespectsCoreBudget) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  ExplorerOptions options;
  options.time_limit_minutes = 60;  // tight budget forces truncation
  options.num_cores = 4;
  options.seed = 21;
  DseResult r = RunS2faDse(space, k, eval, options);

  double total_span = 0;
  for (const auto& p : r.partitions) {
    if (!p.scheduled) continue;
    EXPECT_GE(p.start_minutes, 0.0);
    EXPECT_LE(p.end_minutes, options.time_limit_minutes + 1e-9);
    EXPECT_LE(p.start_minutes, p.end_minutes);
    if (p.truncated) {
      EXPECT_NEAR(p.end_minutes, options.time_limit_minutes, 1e-9);
    }
    total_span += p.end_minutes - p.start_minutes;
  }
  // The schedule can never use more core-minutes than exist.
  EXPECT_LE(total_span,
            options.num_cores * options.time_limit_minutes + 1e-9);
  EXPECT_LE(r.elapsed_minutes, options.time_limit_minutes + 1e-9);
}

// ------------------------------------------------------------ resilience

TEST(ExplorerTest, SurvivesHeavyFaultInjection) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);

  ExplorerOptions clean;
  clean.time_limit_minutes = 120;
  clean.seed = 9;
  DseResult baseline = RunS2faDse(space, k, eval, clean);
  ASSERT_TRUE(baseline.found_feasible);

  // 30% of attempts fail, split across all three failure modes.
  ExplorerOptions faulty = clean;
  faulty.faults.crash_rate = 0.1;
  faulty.faults.timeout_rate = 0.1;
  faulty.faults.garbage_rate = 0.1;
  faulty.faults.seed = 1234;
  DseResult r = RunS2faDse(space, k, eval, faulty);

  // The exploration completes and no partition aborted: every scheduled
  // partition ran to a recorded stop reason.
  ASSERT_TRUE(r.found_feasible);
  for (const auto& p : r.partitions) {
    if (p.scheduled) EXPECT_FALSE(p.result.stop_reason.empty());
  }
  // The resilience layer actually saw and absorbed failures.
  EXPECT_GT(r.resilience.crashes + r.resilience.timeouts +
                r.resilience.garbage,
            0u);
  EXPECT_GT(r.resilience.retries, 0u);
  // Failures cost simulated time but the search still lands in the same
  // cost regime as the fault-free run.
  EXPECT_LE(r.best_cost, baseline.best_cost * 2.0);
}

TEST(ExplorerTest, FaultInjectedRunIsDeterministic) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  ExplorerOptions options;
  options.time_limit_minutes = 120;
  options.seed = 5;
  options.faults.crash_rate = 0.1;
  options.faults.timeout_rate = 0.1;
  options.faults.garbage_rate = 0.1;
  DseResult a = RunS2faDse(space, k, eval, options);
  DseResult b = RunS2faDse(space, k, eval, options);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.elapsed_minutes, b.elapsed_minutes);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.resilience.crashes, b.resilience.crashes);
  EXPECT_EQ(a.resilience.timeouts, b.resilience.timeouts);
  EXPECT_EQ(a.resilience.garbage, b.resilience.garbage);
  EXPECT_EQ(a.resilience.backoff_minutes, b.resilience.backoff_minutes);
}

TEST(ExplorerTest, JournalResumeRepaysZero) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  std::atomic<int> inner_calls{0};
  tuner::EvalFn counting =
      [&inner_calls, eval = HlsEval(k)](const merlin::DesignConfig& cfg) {
        ++inner_calls;
        return eval(cfg);
      };

  const std::string path =
      testing::TempDir() + "s2fa_dse_journal_full.jsonl";
  std::remove(path.c_str());
  ExplorerOptions options;
  options.time_limit_minutes = 120;
  options.seed = 3;
  options.journal_path = path;

  DseResult first = RunS2faDse(space, k, counting, options);
  const int paid = inner_calls.exchange(0);
  EXPECT_GT(paid, 0);
  EXPECT_GT(first.journal_entries, 0u);

  // Resume against the complete journal: zero evaluations re-paid, and the
  // result reproduces the uninterrupted run exactly.
  DseResult resumed = RunS2faDse(space, k, counting, options);
  EXPECT_EQ(inner_calls.load(), 0);
  EXPECT_EQ(resumed.journal_resumed, first.journal_entries);
  EXPECT_EQ(resumed.best_cost, first.best_cost);
  EXPECT_EQ(resumed.elapsed_minutes, first.elapsed_minutes);
  EXPECT_EQ(resumed.evaluations, first.evaluations);
  std::remove(path.c_str());
}

TEST(ExplorerTest, TruncatedJournalResumesPartially) {
  // Simulate a mid-run kill: keep only a prefix of the journal. The rerun
  // must reproduce the uninterrupted result while re-paying exactly the
  // evaluations the prefix is missing.
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  std::atomic<int> inner_calls{0};
  tuner::EvalFn counting =
      [&inner_calls, eval = HlsEval(k)](const merlin::DesignConfig& cfg) {
        ++inner_calls;
        return eval(cfg);
      };

  const std::string path =
      testing::TempDir() + "s2fa_dse_journal_prefix.jsonl";
  std::remove(path.c_str());
  ExplorerOptions options;
  options.time_limit_minutes = 120;
  options.seed = 3;
  options.journal_path = path;
  // Exact repaid-evaluation accounting needs the FCFS schedule: the
  // adaptive scheduler's reclaim streams warm-start from main-run points,
  // and those cache duplicates collapse raw calls depending on which half
  // of the journal survives. (Adaptive resume-equality is covered in
  // scheduler_test.)
  options.scheduler = SchedulerKind::kFcfs;
  DseResult first = RunS2faDse(space, k, counting, options);
  inner_calls.store(0);

  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), first.journal_entries);
  const std::size_t kept = lines.size() / 2;
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < kept; ++i) out << lines[i] << '\n';
  }

  DseResult resumed = RunS2faDse(space, k, counting, options);
  EXPECT_EQ(resumed.journal_resumed, kept);
  EXPECT_EQ(static_cast<std::size_t>(inner_calls.load()),
            lines.size() - kept);
  EXPECT_EQ(resumed.best_cost, first.best_cost);
  EXPECT_EQ(resumed.elapsed_minutes, first.elapsed_minutes);
  EXPECT_EQ(resumed.evaluations, first.evaluations);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ eval cache

TEST(ExplorerTest, CacheOnAndOffProduceIdenticalTrajectories) {
  // The determinism contract of the memoizing cache: a hit replays the
  // stored outcome (simulated minutes included), so the search trajectory
  // is bit-identical with the cache on or off — only raw evaluator calls
  // differ.
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  std::atomic<int> raw_calls{0};
  tuner::EvalFn counting =
      [&raw_calls, eval = HlsEval(k)](const merlin::DesignConfig& cfg) {
        ++raw_calls;
        return eval(cfg);
      };

  ExplorerOptions options;
  options.time_limit_minutes = 120;
  options.seed = 11;
  options.cache.enabled = false;
  DseResult off = RunS2faDse(space, k, counting, options);
  const int paid_off = raw_calls.exchange(0);
  options.cache.enabled = true;
  DseResult on = RunS2faDse(space, k, counting, options);
  const int paid_on = raw_calls.load();

  EXPECT_EQ(on.best_cost, off.best_cost);
  EXPECT_EQ(on.found_feasible, off.found_feasible);
  EXPECT_EQ(on.elapsed_minutes, off.elapsed_minutes);
  EXPECT_EQ(on.evaluations, off.evaluations);
  ASSERT_EQ(on.trace.size(), off.trace.size());
  for (std::size_t i = 0; i < on.trace.size(); ++i) {
    EXPECT_EQ(on.trace[i].time_minutes, off.trace[i].time_minutes);
    EXPECT_EQ(on.trace[i].best_cost, off.trace[i].best_cost);
  }
  // The cache-off run saw no cache at all; the cache-on run paid the black
  // box exactly once per unique design point.
  EXPECT_EQ(off.cache_stats.lookups, 0u);
  EXPECT_GT(on.cache_stats.lookups, 0u);
  EXPECT_EQ(static_cast<std::size_t>(paid_on), on.cache_stats.misses);
  EXPECT_LE(paid_on, paid_off);
  // The run proposes duplicates (training + partitions share the cache),
  // so some evaluations came for free.
  EXPECT_GT(on.cache_stats.hits + on.cache_stats.inflight_joins, 0u);
  EXPECT_GT(on.cache_stats.minutes_saved, 0.0);
}

TEST(ExplorerTest, VanillaRunsFullEvaluationStack) {
  // The baseline used to silently drop every resilience/journal/cache
  // option; now --vanilla runs the identical stack.
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  std::atomic<int> raw_calls{0};
  tuner::EvalFn counting =
      [&raw_calls, eval = HlsEval(k)](const merlin::DesignConfig& cfg) {
        ++raw_calls;
        return eval(cfg);
      };

  const std::string path =
      testing::TempDir() + "s2fa_vanilla_journal.jsonl";
  std::remove(path.c_str());
  ExplorerOptions options;
  options.time_limit_minutes = 120;
  options.seed = 4;
  options.journal_path = path;
  options.faults.crash_rate = 0.1;
  options.faults.timeout_rate = 0.1;
  options.faults.garbage_rate = 0.1;
  options.faults.seed = 99;

  DseResult first = RunVanillaOpenTuner(space, counting, options);
  EXPECT_GT(raw_calls.load(), 0);
  // Injected faults were seen, classified, and retried by the guard.
  EXPECT_GT(first.resilience.crashes + first.resilience.timeouts +
                first.resilience.garbage,
            0u);
  EXPECT_GT(first.resilience.retries, 0u);
  EXPECT_GT(first.journal_entries, 0u);
  EXPECT_GT(first.cache_stats.lookups, 0u);

  // Resume from the journal: zero evaluations re-paid, identical result.
  raw_calls.store(0);
  DseResult resumed = RunVanillaOpenTuner(space, counting, options);
  EXPECT_EQ(raw_calls.load(), 0);
  EXPECT_EQ(resumed.journal_resumed, first.journal_entries);
  EXPECT_EQ(resumed.best_cost, first.best_cost);
  EXPECT_EQ(resumed.elapsed_minutes, first.elapsed_minutes);
  std::remove(path.c_str());
}

TEST(ExplorerTest, VanillaLegacyOverloadMatchesDefaultOptions) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  DseResult legacy = RunVanillaOpenTuner(space, eval, 60, 4, 7);
  ExplorerOptions options;
  options.time_limit_minutes = 60;
  options.num_cores = 4;
  options.seed = 7;
  DseResult full = RunVanillaOpenTuner(space, eval, options);
  EXPECT_EQ(legacy.best_cost, full.best_cost);
  EXPECT_EQ(legacy.elapsed_minutes, full.elapsed_minutes);
  EXPECT_EQ(legacy.evaluations, full.evaluations);
}

TEST(ExplorerTest, TraceIsMonotone) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  ExplorerOptions options;
  options.time_limit_minutes = 120;
  DseResult r = RunS2faDse(space, k, eval, options);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GE(r.trace[i - 1].best_cost, r.trace[i].best_cost);
    EXPECT_LE(r.trace[i - 1].time_minutes, r.trace[i].time_minutes);
  }
}

}  // namespace
}  // namespace s2fa::dse
