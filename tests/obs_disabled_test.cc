// Compiled with S2FA_OBS_DISABLED to prove the macro surface folds to
// no-ops: instrumented call sites cost nothing and record nothing, even
// though the TU links against the normally-built obs library.
#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/obs.h"

#ifndef S2FA_OBS_DISABLED
#error "this test must be compiled with S2FA_OBS_DISABLED"
#endif

namespace s2fa::obs {
namespace {

static_assert(!Enabled(), "disabled obs must fold Enabled() to false");
static_assert(S2FA_OBS_ENABLED == 0, "gate macro must be off");

TEST(ObsDisabledTest, MacrosAreNoOps) {
  Registry::Global().Reset();
  Tracer::Global().Reset();
  SetEnabled(true);  // inert: the compile-time gate wins

  S2FA_COUNT("never", 1);
  S2FA_GAUGE("never_gauge", 1.0);
  S2FA_GAUGE_MAX("never_max", 1.0);
  S2FA_OBSERVE("never_hist", 1.0);
  { S2FA_SPAN("never_span"); }

  MetricsSnapshot snapshot = Registry::Global().Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
  EXPECT_TRUE(Tracer::Global().Events().empty());
}

TEST(ObsDisabledTest, MacroArgumentsAreNotEvaluated) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return 1;
  };
  S2FA_COUNT("side_effect", touch());
  S2FA_OBSERVE("side_effect_hist", static_cast<double>(touch()));
  EXPECT_EQ(evaluations, 0);
}

TEST(ObsDisabledTest, ExportOfEmptyStateStillWorks) {
  Summary summary = CaptureSummary();
  EXPECT_TRUE(summary.spans.empty());
  EXPECT_EQ(RenderSummaryTable(summary),
            "(no observability data recorded)\n");
  Summary parsed = ParseSummaryJson(RenderSummaryJson(summary));
  EXPECT_TRUE(parsed.metrics.counters.empty());
  EXPECT_TRUE(parsed.spans.empty());
}

}  // namespace
}  // namespace s2fa::obs
