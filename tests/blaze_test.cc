#include <gtest/gtest.h>

#include "b2c/compiler.h"
#include "blaze/runtime.h"
#include "blaze/serialization.h"
#include "jvm/assembler.h"
#include "s2fa/framework.h"
#include "support/rng.h"

namespace s2fa::blaze {
namespace {

using jvm::Assembler;
using jvm::MethodSignature;
using jvm::Type;
using jvm::Value;

// ---------------------------------------------------------------- dataset

TEST(DatasetTest, ColumnsMustAgreeOnRecordCount) {
  Dataset d;
  Column a;
  a.field = "x";
  a.element = Type::Float();
  a.per_record = 2;
  a.data.assign(8, Value::OfFloat(0));  // 4 records
  d.AddColumn(a);
  Column b;
  b.field = "y";
  b.element = Type::Int();
  b.per_record = 1;
  b.data.assign(3, Value::OfInt(0));  // 3 records: mismatch
  EXPECT_THROW(d.AddColumn(b), InvalidArgument);
  EXPECT_EQ(d.num_records(), 4u);
}

TEST(DatasetTest, RejectsDuplicateFields) {
  Dataset d;
  Column a;
  a.field = "x";
  a.element = Type::Int();
  a.data.assign(2, Value::OfInt(0));
  d.AddColumn(a);
  EXPECT_THROW(d.AddColumn(a), InvalidArgument);
}

TEST(DatasetTest, RejectsRaggedColumn) {
  Dataset d;
  Column a;
  a.field = "x";
  a.element = Type::Int();
  a.per_record = 3;
  a.data.assign(7, Value::OfInt(0));  // not a multiple of 3
  EXPECT_THROW(d.AddColumn(a), InvalidArgument);
}

TEST(DatasetTest, TotalBytesSumsColumnWidths) {
  Dataset d;
  Column a;
  a.field = "f";
  a.element = Type::Float();  // 4 bytes
  a.data.assign(10, Value::OfFloat(0));
  d.AddColumn(a);
  Column b;
  b.field = "b";
  b.element = Type::Byte();  // 1 byte
  b.data.assign(10, Value::OfInt(0));
  d.AddColumn(b);
  EXPECT_DOUBLE_EQ(d.TotalBytes(), 40.0 + 10.0);
}

// ------------------------------------------------- serialization plan

// Simple map kernel for plan tests: double in, double out.
jvm::ClassPool MakePool() {
  jvm::ClassPool pool;
  Assembler a;
  a.Load(Type::Double(), 0).DConst(2.0).DMul().Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double()};
  sig.ret = Type::Double();
  pool.Define("Doubler").AddMethod(
      jvm::MakeMethod("call", sig, true, 2, a.Finish()));
  return pool;
}

b2c::KernelSpec MakeSpec(std::int64_t batch = 8) {
  b2c::KernelSpec spec;
  spec.kernel_name = "doubler";
  spec.klass = "Doubler";
  spec.input.type = Type::Double();
  spec.input.fields = {{"x", Type::Double(), 1, false}};
  spec.output.type = Type::Double();
  spec.output.fields = {{"y", Type::Double(), 1, false}};
  spec.batch = batch;
  return spec;
}

TEST(SerializationTest, PlanReflectsInterface) {
  jvm::ClassPool pool = MakePool();
  kir::Kernel k = b2c::CompileKernel(pool, MakeSpec());
  SerializationPlan plan = MakeSerializationPlan(k);
  EXPECT_EQ(plan.batch, 8);
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_TRUE(plan.entries[0].is_input);
  EXPECT_EQ(plan.entries[0].source_field, "x");
  EXPECT_FALSE(plan.entries[1].is_input);
  EXPECT_EQ(plan.entries[1].source_field, "y");
  EXPECT_NE(plan.FindBuffer("in_1"), nullptr);
  EXPECT_EQ(plan.FindBuffer("nope"), nullptr);
}

TEST(SerializationTest, RoundTripWithPadding) {
  jvm::ClassPool pool = MakePool();
  kir::Kernel k = b2c::CompileKernel(pool, MakeSpec(8));
  SerializationPlan plan = MakeSerializationPlan(k);

  Dataset input;
  Column x;
  x.field = "x";
  x.element = Type::Double();
  for (int i = 0; i < 5; ++i) x.data.push_back(Value::OfDouble(i + 0.5));
  input.AddColumn(x);

  kir::BufferMap buffers;
  SerializeBatch(plan, input, 0, 5, buffers);
  // Zero-padded to the batch size.
  ASSERT_EQ(buffers["in_1"].size(), 8u);
  EXPECT_DOUBLE_EQ(buffers["in_1"][4].AsDouble(), 4.5);
  EXPECT_DOUBLE_EQ(buffers["in_1"][5].AsDouble(), 0.0);

  buffers["out_1"].assign(8, Value::OfDouble(7.0));
  Dataset out = MakeOutputShell(plan, 5);
  DeserializeBatch(plan, buffers, 0, 5, out);
  EXPECT_DOUBLE_EQ(out.ColumnByField("y").data[4].AsDouble(), 7.0);
}

TEST(SerializationTest, BatchOneReduceKernelIsPerInvocation) {
  // A reduce kernel instantiated with task-loop trip count 1 is still a
  // reduce: its output buffer holds one result per invocation (regression:
  // the old `batch > 1` heuristic misfiled it as a map output).
  jvm::ClassPool pool;
  Assembler a;
  // call(acc: double, x: double) = acc + x * x
  a.Load(Type::Double(), 0);
  a.Load(Type::Double(), 2).Load(Type::Double(), 2).DMul();
  a.DAdd().Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double(), Type::Double()};
  sig.ret = Type::Double();
  pool.Define("SumSq").AddMethod(
      jvm::MakeMethod("call", sig, true, 4, a.Finish()));

  b2c::KernelSpec spec;
  spec.kernel_name = "sumsq";
  spec.klass = "SumSq";
  spec.pattern = kir::ParallelPattern::kReduce;
  spec.input.type = Type::Double();
  spec.input.fields = {{"x", Type::Double(), 1, false}};
  spec.output.type = Type::Double();
  spec.output.fields = {{"ret", Type::Double(), 1, false}};
  spec.batch = 1;
  kir::Kernel k = b2c::CompileKernel(pool, spec);
  SerializationPlan plan = MakeSerializationPlan(k);
  const PlanEntry* out = plan.FindBuffer("out_1");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->per_invocation);

  // Round trip at batch 1: serialize one record, run the kernel, pull the
  // reduce result back out of the invocation slot.
  Dataset input;
  Column x;
  x.field = "x";
  x.element = Type::Double();
  x.data = {Value::OfDouble(3.0)};
  input.AddColumn(x);
  kir::BufferMap buffers;
  SerializeBatch(plan, input, 0, 1, buffers);
  kir::Evaluator(k).Run({{"N", Value::OfInt(1)}}, buffers);
  Dataset out_ds = MakeOutputShell(plan, 1);
  DeserializeBatch(plan, buffers, 0, 1, out_ds);
  EXPECT_DOUBLE_EQ(out_ds.ColumnByField("ret").data[0].AsDouble(), 9.0);
}

TEST(SerializationTest, NarrowedColumnFallsBackToElementConversion) {
  // A double column feeding a float buffer takes the per-element
  // conversion path (the block-copy fast path requires matching kinds).
  jvm::ClassPool pool;
  Assembler a;
  a.Load(Type::Float(), 0).FConst(1.0f).FAdd().Ret(Type::Float());
  MethodSignature sig;
  sig.params = {Type::Float()};
  sig.ret = Type::Float();
  pool.Define("Inc").AddMethod(
      jvm::MakeMethod("call", sig, true, 1, a.Finish()));

  b2c::KernelSpec spec;
  spec.kernel_name = "inc";
  spec.klass = "Inc";
  spec.input.type = Type::Float();
  spec.input.fields = {{"x", Type::Float(), 1, false}};
  spec.output.type = Type::Float();
  spec.output.fields = {{"y", Type::Float(), 1, false}};
  spec.batch = 4;
  kir::Kernel k = b2c::CompileKernel(pool, spec);
  SerializationPlan plan = MakeSerializationPlan(k);

  Dataset input;
  Column x;
  x.field = "x";
  x.element = Type::Double();  // wider than the kernel's float buffer
  for (int i = 0; i < 4; ++i) x.data.push_back(Value::OfDouble(i + 0.25));
  input.AddColumn(x);
  kir::BufferMap buffers;
  SerializeBatch(plan, input, 0, 4, buffers);
  ASSERT_EQ(buffers["in_1"].size(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(buffers["in_1"][static_cast<std::size_t>(i)].is_float());
    EXPECT_FLOAT_EQ(buffers["in_1"][static_cast<std::size_t>(i)].AsFloat(),
                    static_cast<float>(i + 0.25));
  }

  // And back out: float kernel results land in a double output column.
  buffers["out_1"].assign(4, Value::OfFloat(2.5f));
  Dataset out_ds;
  Column y;
  y.field = "y";
  y.element = Type::Double();
  y.data.assign(4, Value::OfDouble(0.0));
  out_ds.AddColumn(y);
  DeserializeBatch(plan, buffers, 0, 4, out_ds);
  for (int i = 0; i < 4; ++i) {
    const Value& v = out_ds.ColumnByField("y").data[static_cast<std::size_t>(i)];
    ASSERT_TRUE(v.is_double());
    EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
  }
}

TEST(SerializationTest, ScalaHelperMentionsBuffersAndReflection) {
  jvm::ClassPool pool = MakePool();
  kir::Kernel k = b2c::CompileKernel(pool, MakeSpec());
  SerializationPlan plan = MakeSerializationPlan(k);
  std::string scala = RenderScalaHelper(plan);
  EXPECT_NE(scala.find("object doublerSerde"), std::string::npos);
  EXPECT_NE(scala.find("in_1"), std::string::npos);
  EXPECT_NE(scala.find("reflect"), std::string::npos);
}

TEST(SerializationTest, MissingBroadcastThrows) {
  jvm::ClassPool pool;
  Assembler a;
  // call(P in) where P = {x: double, w: double broadcast}: return x * w.
  jvm::Klass& p = pool.Define("P");
  p.AddField({"x", Type::Double()});
  p.AddField({"w", Type::Double()});
  a.Load(Type::Class("P"), 0).GetField("P", "x");
  a.Load(Type::Class("P"), 0).GetField("P", "w");
  a.DMul().Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Class("P")};
  sig.ret = Type::Double();
  pool.Define("WMul").AddMethod(
      jvm::MakeMethod("call", sig, true, 1, a.Finish()));

  b2c::KernelSpec spec;
  spec.kernel_name = "wmul";
  spec.klass = "WMul";
  spec.input.type = Type::Class("P");
  b2c::FieldSpec fx{"x", Type::Double(), 1, false};
  b2c::FieldSpec fw{"w", Type::Double(), 1, false};
  fw.broadcast = true;
  spec.input.fields = {fx, fw};
  spec.output.type = Type::Double();
  spec.output.fields = {{"y", Type::Double(), 1, false}};
  spec.batch = 4;
  kir::Kernel k = b2c::CompileKernel(pool, spec);
  SerializationPlan plan = MakeSerializationPlan(k);

  Dataset input;
  Column x;
  x.field = "x";
  x.element = Type::Double();
  x.data.assign(4, Value::OfDouble(1.0));
  input.AddColumn(x);
  kir::BufferMap buffers;
  EXPECT_THROW(SerializeBatch(plan, input, 0, 4, buffers, nullptr),
               InvalidArgument);
}

// ---------------------------------------------------------------- runtime

TEST(RuntimeTest, MapAcrossMultipleBatches) {
  jvm::ClassPool pool = MakePool();
  Artifact artifact =
      BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
  BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "doubler", artifact);

  Dataset input;
  Column x;
  x.field = "x";
  x.element = Type::Double();
  for (int i = 0; i < 21; ++i) x.data.push_back(Value::OfDouble(i));
  input.AddColumn(x);

  ExecutionStats stats;
  Dataset out = runtime.Map("doubler", input, nullptr, &stats);
  EXPECT_EQ(stats.invocations, 3u);  // ceil(21 / 8)
  EXPECT_GT(stats.total_us, 0.0);
  for (int i = 0; i < 21; ++i) {
    EXPECT_DOUBLE_EQ(
        out.ColumnByField("y").data[static_cast<std::size_t>(i)].AsDouble(),
        2.0 * i);
  }
}

TEST(RuntimeTest, UnknownAcceleratorThrows) {
  BlazeRuntime runtime;
  Dataset empty;
  EXPECT_THROW(runtime.Map("nope", empty), InvalidArgument);
}

TEST(RuntimeTest, DuplicateRegistrationThrows) {
  jvm::ClassPool pool = MakePool();
  Artifact artifact =
      BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
  BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "doubler", artifact);
  EXPECT_THROW(RegisterWithBlaze(runtime, "doubler", artifact),
               InvalidArgument);
  EXPECT_TRUE(runtime.manager().Has("doubler"));
  EXPECT_EQ(runtime.manager().size(), 1u);
}

TEST(RuntimeTest, StatsBreakdownSumsToTotal) {
  jvm::ClassPool pool = MakePool();
  Artifact artifact =
      BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
  BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "doubler", artifact);
  Dataset input;
  Column x;
  x.field = "x";
  x.element = Type::Double();
  x.data.assign(16, Value::OfDouble(1.0));
  input.AddColumn(x);
  ExecutionStats stats;
  runtime.Map("doubler", input, nullptr, &stats);
  EXPECT_NEAR(stats.total_us,
              stats.serialize_us + stats.transfer_us + stats.compute_us +
                  stats.overhead_us,
              1e-9);
}

// ------------------------------------------------------------ degradation

Dataset DoublerInput(int n) {
  Dataset input;
  Column x;
  x.field = "x";
  x.element = Type::Double();
  for (int i = 0; i < n; ++i) x.data.push_back(Value::OfDouble(i));
  input.AddColumn(x);
  return input;
}

TEST(RuntimeTest, TransientFaultIsRetriedTransparently) {
  jvm::ClassPool pool = MakePool();
  Artifact artifact =
      BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
  BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "doubler", artifact);
  // Invocation 1 fails its first attempt only; the retry succeeds.
  runtime.SetFaultInjector(
      [](const std::string&, std::size_t invocation, int attempt) {
        return invocation == 1 && attempt == 0;
      });

  ExecutionStats stats;
  Dataset out = runtime.Map("doubler", DoublerInput(21), nullptr, &stats);
  EXPECT_EQ(stats.accel_failures, 1u);
  EXPECT_EQ(stats.accel_retries, 1u);
  EXPECT_EQ(stats.host_fallbacks, 0u);
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.host_us, 0.0);
  for (int i = 0; i < 21; ++i) {
    EXPECT_DOUBLE_EQ(
        out.ColumnByField("y").data[static_cast<std::size_t>(i)].AsDouble(),
        2.0 * i);
  }
}

TEST(RuntimeTest, PersistentFaultFallsBackToHost) {
  jvm::ClassPool pool = MakePool();
  Artifact artifact =
      BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
  BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "doubler", artifact);
  // Invocation 0 fails both attempts: that batch degrades to the host
  // path, the rest stay on the accelerator — and the output is identical.
  runtime.SetFaultInjector(
      [](const std::string&, std::size_t invocation, int) {
        return invocation == 0;
      });

  ExecutionStats stats;
  Dataset out = runtime.Map("doubler", DoublerInput(21), nullptr, &stats);
  EXPECT_EQ(stats.accel_failures, 2u);
  EXPECT_EQ(stats.host_fallbacks, 1u);
  EXPECT_TRUE(stats.degraded);
  EXPECT_GT(stats.host_us, 0.0);
  // The host path is functionally identical, just slower.
  for (int i = 0; i < 21; ++i) {
    EXPECT_DOUBLE_EQ(
        out.ColumnByField("y").data[static_cast<std::size_t>(i)].AsDouble(),
        2.0 * i);
  }
  // Fallback compute is charged at the host slowdown and included in total.
  ExecutionStats clean_stats;
  runtime.SetFaultInjector(nullptr);
  runtime.Map("doubler", DoublerInput(21), nullptr, &clean_stats);
  EXPECT_GT(stats.total_us, clean_stats.total_us);
}

TEST(RuntimeTest, RandomFaultInjectorIsDeterministic) {
  EXPECT_EQ(MakeRandomFaultInjector(0.0, 1), nullptr);
  AccelFaultInjector a = MakeRandomFaultInjector(0.5, 42);
  AccelFaultInjector b = MakeRandomFaultInjector(0.5, 42);
  int failures = 0;
  for (std::size_t inv = 0; inv < 200; ++inv) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      EXPECT_EQ(a("id", inv, attempt), b("id", inv, attempt));
      if (a("id", inv, attempt)) ++failures;
    }
  }
  EXPECT_NEAR(failures / 400.0, 0.5, 0.1);
  EXPECT_THROW(MakeRandomFaultInjector(1.5, 1), InvalidArgument);
}

TEST(RuntimeTest, RandomFaultInjectorEdgeRates) {
  // Rate 0 is the no-injector fast path; rate 1 fails every attempt.
  EXPECT_EQ(MakeRandomFaultInjector(0.0, 99), nullptr);
  AccelFaultInjector always = MakeRandomFaultInjector(1.0, 99);
  ASSERT_NE(always, nullptr);
  for (std::size_t inv = 0; inv < 64; ++inv) {
    EXPECT_TRUE(always("id", inv, 0));
    EXPECT_TRUE(always("id", inv, 1));
  }
}

TEST(RuntimeTest, RandomFaultInjectorRollsIndependently) {
  // The (invocation, attempt) rolls are independent: at rate 0.5 all four
  // fail/ok combinations of (attempt 0, attempt 1) occur across
  // invocations, so a first-attempt failure says nothing about the retry.
  AccelFaultInjector injector = MakeRandomFaultInjector(0.5, 7);
  bool seen[2][2] = {};
  for (std::size_t inv = 0; inv < 200; ++inv) {
    seen[injector("id", inv, 0)][injector("id", inv, 1)] = true;
  }
  EXPECT_TRUE(seen[0][0]);
  EXPECT_TRUE(seen[0][1]);
  EXPECT_TRUE(seen[1][0]);
  EXPECT_TRUE(seen[1][1]);
  // Different accelerator ids draw from different streams.
  AccelFaultInjector other = MakeRandomFaultInjector(0.5, 7);
  bool differs = false;
  for (std::size_t inv = 0; inv < 200 && !differs; ++inv) {
    differs = injector("a", inv, 0) != other("b", inv, 0);
  }
  EXPECT_TRUE(differs);
}

TEST(RuntimeTest, UnknownAcceleratorErrorListsRegisteredIds) {
  AcceleratorManager manager;
  try {
    manager.Get("ghost");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("(none)"), std::string::npos);
  }

  jvm::ClassPool pool = MakePool();
  Artifact artifact = BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
  BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "doubler", artifact);
  RegisterWithBlaze(runtime, "tripler", artifact);
  try {
    runtime.manager().Get("ghost");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("doubler"), std::string::npos);
    EXPECT_NE(message.find("tripler"), std::string::npos);
  }
}

TEST(RuntimeTest, ExecutionStatsMergeAggregates) {
  ExecutionStats a;
  a.invocations = 2;
  a.serialize_us = 1;
  a.transfer_us = 2;
  a.compute_us = 3;
  a.overhead_us = 4;
  a.host_us = 5;
  a.total_us = 15;
  a.accel_failures = 1;
  a.accel_retries = 1;
  ExecutionStats b;
  b.invocations = 3;
  b.total_us = 7;
  b.host_fallbacks = 2;
  b.degraded = true;
  a.Merge(b);
  EXPECT_EQ(a.invocations, 5u);
  EXPECT_DOUBLE_EQ(a.total_us, 22.0);
  EXPECT_EQ(a.accel_failures, 1u);
  EXPECT_EQ(a.accel_retries, 1u);
  EXPECT_EQ(a.host_fallbacks, 2u);
  EXPECT_TRUE(a.degraded);
  // Merging a clean stats block never clears the degraded flag.
  a.Merge(ExecutionStats{});
  EXPECT_TRUE(a.degraded);
}

TEST(RuntimeTest, PerInvocationCostMatchesStatsBreakdown) {
  jvm::ClassPool pool = MakePool();
  Artifact artifact = BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
  BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "doubler", artifact);
  ExecutionStats per = runtime.PerInvocationCost("doubler");
  EXPECT_EQ(per.invocations, 1u);
  EXPECT_DOUBLE_EQ(per.total_us, per.serialize_us + per.transfer_us +
                                     per.compute_us + per.overhead_us);
  // Two clean invocations cost exactly twice the per-invocation charge.
  ExecutionStats stats;
  runtime.Map("doubler", DoublerInput(16), nullptr, &stats);
  EXPECT_EQ(stats.invocations, 2u);
  EXPECT_DOUBLE_EQ(stats.total_us, 2 * per.total_us);
  EXPECT_THROW(runtime.PerInvocationCost("ghost"), InvalidArgument);
}

}  // namespace
}  // namespace s2fa::blaze
