#include <gtest/gtest.h>

#include <cmath>

#include "kir/kernel.h"
#include "support/thread_pool.h"
#include "tuner/bandit.h"
#include "tuner/driver.h"
#include "tuner/space.h"

namespace s2fa::tuner {
namespace {

using kir::BinaryOp;
using kir::BufferKind;
using kir::Expr;
using kir::Stmt;
using kir::Type;

// A two-loop kernel to build a realistic space from.
kir::Kernel TwoLoopKernel() {
  kir::Kernel k;
  k.name = "two";
  k.buffers.push_back({"in", Type::Float(), 256, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Float(), 16, BufferKind::kOutput, ""});
  auto i = Expr::Var("i", Type::Int());
  auto j = Expr::Var("j", Type::Int());
  auto acc = Expr::Var("acc", Type::Float());
  auto inner = Stmt::For(
      1, "j", 16,
      Stmt::Block({Stmt::Assign(
          acc,
          Expr::Binary(BinaryOp::kAdd, acc,
                       Expr::ArrayRef(
                           "in", Type::Float(),
                           Expr::Binary(BinaryOp::kAdd,
                                        Expr::Binary(BinaryOp::kMul, i,
                                                     Expr::IntLit(16)),
                                        j))))}));
  auto outer = Stmt::For(
      0, "i", 16,
      Stmt::Block({Stmt::Decl("acc", Type::Float(), Expr::FloatLit(0.0f)),
                   inner,
                   Stmt::Assign(Expr::ArrayRef("out", Type::Float(), i),
                                acc)}));
  k.body = Stmt::Block({outer});
  k.task_loop_id = 0;
  return k;
}

// Synthetic separable objective: each coordinate contributes its squared
// distance from a target index; one global optimum.
struct SyntheticObjective {
  const DesignSpace* space;
  Point target;
  mutable int calls = 0;

  EvalOutcome operator()(const merlin::DesignConfig&) const {
    // The driver only hands us configs; for the synthetic objective we
    // reconstruct nothing — instead tests use EvalAt directly.
    return {};
  }
};

// ----------------------------------------------------------------- space

TEST(SpaceTest, BuildsTableOneFactors) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  // Two loops x {tile, parallel, pipeline} + two buffers x bits = 8.
  EXPECT_EQ(space.num_factors(), 8u);
  EXPECT_NO_THROW(space.FactorIndex("L0.tile"));
  EXPECT_NO_THROW(space.FactorIndex("L1.parallel"));
  EXPECT_NO_THROW(space.FactorIndex("in.bits"));
  EXPECT_THROW(space.FactorIndex("bogus"), InvalidArgument);
  // The error names the factors that do exist, so a typo is self-diagnosing.
  try {
    space.FactorIndex("bogus");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no factor named bogus"), std::string::npos) << what;
    EXPECT_NE(what.find("available factors:"), std::string::npos) << what;
    EXPECT_NE(what.find("L0.tile"), std::string::npos) << what;
    EXPECT_NE(what.find("in.bits"), std::string::npos) << what;
  }
}

TEST(SpaceTest, ParallelValuesArePowersOfTwoPlusTrip) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  const Factor& f = space.factors[space.FactorIndex("L0.parallel")];
  std::vector<std::int64_t> expect{1, 2, 4, 8, 16};
  EXPECT_EQ(f.values, expect);
}

TEST(SpaceTest, BitValuesStartAtElementWidth) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  const Factor& f = space.factors[space.FactorIndex("in.bits")];
  EXPECT_EQ(f.values.front(), 32);
  EXPECT_EQ(f.values.back(), 512);
}

TEST(SpaceTest, CardinalityIsProductOfFactorSizes) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  double log10 = 0;
  for (const auto& f : space.factors) {
    log10 += std::log10(static_cast<double>(f.values.size()));
  }
  EXPECT_DOUBLE_EQ(space.Log10Cardinality(), log10);
  EXPECT_GT(space.Log10Cardinality(), 4.0);  // thousands of points at least
}

TEST(SpaceTest, RandomPointsAreValidAndVaried) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  Rng rng(5);
  Point a = space.RandomPoint(rng);
  space.ValidatePoint(a);
  bool varied = false;
  for (int i = 0; i < 20; ++i) {
    if (space.RandomPoint(rng) != a) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(SpaceTest, MutationChangesBoundedCoordinates) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  Rng rng(7);
  Point p = space.RandomPoint(rng);
  Point q = space.Mutate(p, rng, 2);
  space.ValidatePoint(q);
  int diff = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] != q[i]) ++diff;
  }
  EXPECT_LE(diff, 2);
}

TEST(SpaceTest, ToConfigRoundTripsFactors) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  Point p(space.num_factors(), 0);
  p[space.FactorIndex("L0.parallel")] = 2;  // value 4
  p[space.FactorIndex("L0.pipeline")] = 1;  // on
  p[space.FactorIndex("in.bits")] = 3;      // 256
  merlin::DesignConfig cfg = space.ToConfig(p);
  EXPECT_EQ(cfg.loops.at(0).parallel, 4);
  EXPECT_EQ(cfg.loops.at(0).pipeline, merlin::PipelineMode::kOn);
  EXPECT_EQ(cfg.buffer_bits.at("in"), 256);
}

// ------------------------------------------------------------ techniques

// Evaluates the synthetic objective at a point.
double CostAt(const DesignSpace& space, const Point& target,
              const Point& p) {
  double cost = 1.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    double d = static_cast<double>(p[i]) - static_cast<double>(target[i]);
    cost += d * d;
    (void)space;
  }
  return cost;
}

class TechniqueConvergence : public ::testing::TestWithParam<int> {};

TEST_P(TechniqueConvergence, AllTechniquesImproveOnRandom) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  Rng trng(static_cast<std::uint64_t>(GetParam()));
  Point target = space.RandomPoint(trng);

  auto techniques = DefaultTechniques(&space, 17);
  for (auto& tech : techniques) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 5);
    double first_cost = -1;
    double best = 1e100;
    for (int iter = 0; iter < 300; ++iter) {
      Point p = tech->Propose(rng);
      double cost = CostAt(space, target, p);
      if (first_cost < 0) first_cost = cost;
      best = std::min(best, cost);
      tech->Report(p, cost, /*feasible=*/true);
    }
    // Each technique must find something better than its first draw (and
    // get near the optimum for this small space).
    EXPECT_LE(best, first_cost) << tech->name();
    EXPECT_LT(best, 30.0) << tech->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TechniqueConvergence, ::testing::Range(1, 6));

TEST(TechniqueTest, GreedyMutationStartsRandomWithoutBest) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  UniformGreedyMutation greedy(&space);
  Rng rng(3);
  Point p = greedy.Propose(rng);
  space.ValidatePoint(p);
}

TEST(TechniqueTest, InfeasibleReportsNeverBecomeBest) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  UniformGreedyMutation greedy(&space);
  Rng rng(3);
  Point p = greedy.Propose(rng);
  greedy.Report(p, kInfeasibleCost, /*feasible=*/false);
  // Next proposal is still random (no best recorded): just must be valid.
  space.ValidatePoint(greedy.Propose(rng));
}

TEST(TechniqueTest, SimulatedAnnealingAnchorsOnBetterPoints) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  SimulatedAnnealing sa(&space, /*seed=*/5);
  Rng rng(3);
  Point p = space.RandomPoint(rng);
  sa.Report(p, 50.0, true);
  Point q = space.Mutate(p, rng, 1);
  sa.Report(q, 10.0, true);  // strictly better: always becomes current
  // Proposals are single mutations of the current point.
  Point proposal = sa.Propose(rng);
  int diff = 0;
  for (std::size_t i = 0; i < proposal.size(); ++i) {
    if (proposal[i] != q[i]) ++diff;
  }
  EXPECT_LE(diff, 1);
}

TEST(TechniqueTest, SimulatedAnnealingNeverAdoptsInfeasible) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  SimulatedAnnealing sa(&space, /*seed=*/5);
  Rng rng(8);
  Point p = space.RandomPoint(rng);
  sa.Report(p, 50.0, true);
  // Flood with infeasible reports; the chain must stay anchored at p.
  for (int i = 0; i < 50; ++i) {
    sa.Report(space.RandomPoint(rng), kInfeasibleCost, false);
  }
  Point proposal = sa.Propose(rng);
  int diff = 0;
  for (std::size_t i = 0; i < proposal.size(); ++i) {
    if (proposal[i] != p[i]) ++diff;
  }
  EXPECT_LE(diff, 1);
}

TEST(TechniqueTest, DifferentialEvolutionFillsPopulationFirst) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  DifferentialEvolution de(&space, /*population=*/6);
  Rng rng(9);
  // While the population is filling, proposals are uniform random and all
  // reports are absorbed without touching a (nonexistent) worst member.
  for (int i = 0; i < 6; ++i) {
    Point p = de.Propose(rng);
    space.ValidatePoint(p);
    de.Report(p, 100.0 - i, true);
  }
  // Now trials combine members; still valid points.
  for (int i = 0; i < 20; ++i) {
    Point p = de.Propose(rng);
    space.ValidatePoint(p);
    de.Report(p, 50.0, true);
  }
  SUCCEED();
}

TEST(TechniqueTest, ParticleSwarmHandlesUnmatchedReports) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  ParticleSwarm pso(&space);
  Rng rng(4);
  // A seed injection reports a point PSO never proposed: must not crash
  // and must still update the global best.
  Point seed = space.RandomPoint(rng);
  pso.Report(seed, 1.0, true);
  Point p = pso.Propose(rng);
  space.ValidatePoint(p);
}

TEST(TechniqueTest, SeedWithPrimesEveryTechnique) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  auto techniques = DefaultTechniques(&space, 3);
  Rng rng(6);
  Point seed(space.num_factors(), 0);
  for (auto& t : techniques) {
    t->SeedWith(seed, 5.0, true);
    // Greedy now mutates the seed: proposals stay near it.
    Point p = t->Propose(rng);
    space.ValidatePoint(p);
  }
}

TEST(BanditTest, WindowForgetsStaleSuccesses) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  AucBandit bandit(DefaultTechniques(&space, 1), /*exploration=*/0.0,
                   /*window=*/10);
  Rng rng(2);
  // Arm 0: early hits, then a long dry streak longer than the window.
  for (std::size_t t = 0; t < bandit.num_techniques(); ++t) {
    bandit.ReportOutcome(t, false);  // prime all arms
  }
  for (int i = 0; i < 5; ++i) bandit.ReportOutcome(0, true);
  double auc_hot = bandit.AucOf(0);
  for (int i = 0; i < 15; ++i) bandit.ReportOutcome(0, false);
  double auc_cold = bandit.AucOf(0);
  EXPECT_GT(auc_hot, auc_cold);
  EXPECT_EQ(auc_cold, 0.0);  // hits have left the window entirely
}

TEST(DriverTest, HomogeneousBatchesComeFromOneTechnique) {
  // Indirect check: with homogeneous batches and a single-iteration run,
  // the tuner still functions and produces `parallel` evaluations.
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  int calls = 0;
  auto eval = [&](const merlin::DesignConfig&) -> EvalOutcome {
    ++calls;
    return {true, 10.0, 50.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 50;  // exactly one batch
  options.parallel = 8;
  options.homogeneous_batches = true;
  TuneResult r = Tune(space, eval, options);
  EXPECT_EQ(calls, 8);
  EXPECT_TRUE(r.found_feasible);
}

// ---------------------------------------------------------------- bandit

TEST(BanditTest, PrefersProductiveTechnique) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  AucBandit bandit(DefaultTechniques(&space, 1));
  Rng rng(9);
  // Feed outcomes: technique 2 always produces new bests, others never.
  for (int round = 0; round < 100; ++round) {
    std::size_t t = bandit.Select(rng);
    bandit.ReportOutcome(t, t == 2);
  }
  // After warmup, technique 2 must dominate usage.
  std::size_t uses2 = bandit.UsesOf(2);
  for (std::size_t t = 0; t < bandit.num_techniques(); ++t) {
    if (t != 2) EXPECT_GT(uses2, bandit.UsesOf(t));
  }
  EXPECT_GT(bandit.AucOf(2), bandit.AucOf(0));
}

TEST(BanditTest, AllArmsTriedFirst) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  AucBandit bandit(DefaultTechniques(&space, 1));
  Rng rng(4);
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < bandit.num_techniques(); ++i) {
    std::size_t t = bandit.Select(rng);
    EXPECT_EQ(seen.count(t), 0u);
    seen.insert(t);
    bandit.ReportOutcome(t, false);
  }
  EXPECT_EQ(seen.size(), bandit.num_techniques());
}

// ---------------------------------------------------------------- driver

TEST(DriverTest, FindsGoodPointOnSyntheticObjective) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  Rng trng(77);
  Point target = space.RandomPoint(trng);
  // Encode the synthetic objective through the config: rebuild the point
  // from the config by scanning factor values.
  auto eval = [&](const merlin::DesignConfig& cfg) -> EvalOutcome {
    Point p(space.num_factors(), 0);
    for (std::size_t i = 0; i < space.num_factors(); ++i) {
      const Factor& f = space.factors[i];
      std::int64_t value = 0;
      switch (f.kind) {
        case FactorKind::kLoopTile: value = cfg.loops.at(f.loop_id).tile; break;
        case FactorKind::kLoopParallel:
          value = cfg.loops.at(f.loop_id).parallel;
          break;
        case FactorKind::kLoopPipeline:
          value = static_cast<std::int64_t>(cfg.loops.at(f.loop_id).pipeline);
          break;
        case FactorKind::kBufferBits:
          value = cfg.buffer_bits.at(f.buffer);
          break;
      }
      for (std::size_t v = 0; v < f.values.size(); ++v) {
        if (f.values[v] == value) p[i] = v;
      }
    }
    EvalOutcome outcome;
    outcome.feasible = true;
    outcome.cost = CostAt(space, target, p);
    outcome.eval_minutes = 5.0;
    return outcome;
  };

  TuneOptions options;
  options.time_limit_minutes = 600;
  options.parallel = 8;
  options.seed = 42;
  TuneResult result = Tune(space, eval, options);
  EXPECT_TRUE(result.found_feasible);
  EXPECT_LT(result.best_cost, 5.0);  // near the optimum
  EXPECT_EQ(result.stop_reason, "time limit");
  EXPECT_GT(result.evaluations, 100u);
  EXPECT_LE(result.elapsed_minutes, 600.0);
}

TEST(DriverTest, ClockAdvancesByBatchMax) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  int calls = 0;
  auto eval = [&](const merlin::DesignConfig&) -> EvalOutcome {
    ++calls;
    return {true, 100.0, 10.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 100;  // 10 batches of 10 minutes
  options.parallel = 8;
  TuneResult result = Tune(space, eval, options);
  EXPECT_EQ(calls, 10 * 8);
  EXPECT_EQ(result.evaluations, 80u);
}

TEST(DriverTest, SeedsEvaluatedFirstAndUsed) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  Point magic(space.num_factors(), 0);
  bool first = true;
  bool seed_was_first = false;
  auto eval = [&](const merlin::DesignConfig& cfg) -> EvalOutcome {
    bool is_magic = cfg.buffer_bits.at("in") == 32 &&
                    cfg.loops.at(0).parallel == 1;
    if (first) {
      seed_was_first = is_magic;
      first = false;
    }
    // The magic (all-zero-index) point is the global optimum.
    return {true, is_magic ? 1.0 : 50.0, 5.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 60;
  options.seeds.push_back({magic, "area-driven"});
  TuneResult result = Tune(space, eval, options);
  EXPECT_TRUE(seed_was_first);
  EXPECT_DOUBLE_EQ(result.best_cost, 1.0);
}

TEST(DriverTest, CustomStopCriterionFires) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  auto eval = [](const merlin::DesignConfig&) -> EvalOutcome {
    return {true, 10.0, 5.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 10000;
  options.should_stop = [](const ResultDatabase& db) {
    return db.size() >= 24;
  };
  options.stop_reason_label = "entropy criterion";
  TuneResult result = Tune(space, eval, options);
  EXPECT_EQ(result.stop_reason, "entropy criterion");
  EXPECT_EQ(result.evaluations, 24u);
}

TEST(DriverTest, DeterministicForSameSeed) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  auto eval = [&](const merlin::DesignConfig& cfg) -> EvalOutcome {
    double c = 10.0 + static_cast<double>(cfg.loops.at(0).parallel) +
               static_cast<double>(cfg.buffer_bits.at("in")) / 64.0;
    return {true, c, 5.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 60;
  options.seed = 12345;
  TuneResult a = Tune(space, eval, options);
  TuneResult b = Tune(space, eval, options);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(DriverTest, ParallelEvalPoolMatchesSerial) {
  // Batches evaluated on a thread pool commit in proposal order, so the
  // whole run is bit-identical to the serial evaluation.
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  auto eval = [](const merlin::DesignConfig& cfg) -> EvalOutcome {
    double c = 10.0 + static_cast<double>(cfg.loops.at(0).parallel) +
               static_cast<double>(cfg.buffer_bits.at("in")) / 64.0 +
               (cfg.loops.at(0).pipeline == merlin::PipelineMode::kOn
                    ? -0.5
                    : 0.0);
    return {true, c, 5.0 + c / 100.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 60;
  options.parallel = 8;
  options.seed = 77;
  TuneResult serial = Tune(space, eval, options);

  ThreadPool pool(4);
  options.eval_pool = &pool;
  TuneResult pooled = Tune(space, eval, options);

  EXPECT_EQ(serial.best, pooled.best);
  EXPECT_EQ(serial.best_cost, pooled.best_cost);
  EXPECT_EQ(serial.evaluations, pooled.evaluations);
  EXPECT_EQ(serial.elapsed_minutes, pooled.elapsed_minutes);
  ASSERT_EQ(serial.trace.size(), pooled.trace.size());
  for (std::size_t i = 0; i < serial.trace.size(); ++i) {
    EXPECT_EQ(serial.trace[i].time_minutes, pooled.trace[i].time_minutes);
    EXPECT_EQ(serial.trace[i].best_cost, pooled.trace[i].best_cost);
  }
}

TEST(DriverTest, FinalBatchClampedToTimeLimit) {
  // The last batch may finish past the budget; its evaluations stay in
  // the database, but the reported best/trace cannot claim an improvement
  // found after the limit.
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  int calls = 0;
  auto eval = [&](const merlin::DesignConfig&) -> EvalOutcome {
    ++calls;  // strictly improving: every evaluation is a new best
    return {true, 1000.0 - calls, 10.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 95;  // batches land at 10, 20, ..., 100
  options.parallel = 1;
  TuneResult result = Tune(space, eval, options);

  EXPECT_EQ(calls, 10);                     // the overshoot batch DID run
  EXPECT_EQ(result.evaluations, 10u);       // and is accounted for
  EXPECT_DOUBLE_EQ(result.best_cost, 991.0);  // ...but t=100's 990 is not
                                              // claimed as the best
  EXPECT_DOUBLE_EQ(result.elapsed_minutes, 95.0);
  ASSERT_FALSE(result.trace.empty());
  for (const auto& tp : result.trace) {
    EXPECT_LE(tp.time_minutes, 95.0);
  }
}

TEST(DriverTest, RunEntirelyPastLimitReportsNoBest) {
  // Degenerate clamp: the only evaluation lands past the budget, so the
  // run cannot claim it.
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  auto eval = [](const merlin::DesignConfig&) -> EvalOutcome {
    return {true, 10.0, 100.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 95;
  options.parallel = 1;
  TuneResult result = Tune(space, eval, options);
  EXPECT_FALSE(result.found_feasible);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_DOUBLE_EQ(result.elapsed_minutes, 95.0);
}

TEST(DriverTest, AllInfeasibleRunReportsNoBest) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  auto eval = [](const merlin::DesignConfig&) -> EvalOutcome {
    return {false, kInfeasibleCost, 5.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 30;
  TuneResult result = Tune(space, eval, options);
  EXPECT_FALSE(result.found_feasible);
}

// -------------------------------------------------------------- sessions

TEST(SessionTest, ChunkedGrantsMatchSingleTune) {
  // The scheduler's contract: RunFor(a); RunFor(b) commits exactly the
  // same evaluation sequence as one RunFor(a + b), so a preempted partition
  // is bit-identical to an uninterrupted one given the same total budget.
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  auto eval = [](const merlin::DesignConfig& cfg) -> EvalOutcome {
    double c = 10.0 + static_cast<double>(cfg.loops.at(0).parallel) +
               static_cast<double>(cfg.buffer_bits.at("in")) / 64.0;
    return {true, c, 5.0 + c / 200.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 120;
  options.parallel = 4;
  options.seed = 99;
  TuneResult whole = Tune(space, eval, options);

  TuneSession session(space, eval, options);
  for (double grant : {7.0, 13.0, 40.0, 25.0, 60.0}) {
    session.RunFor(grant);  // grants past the limit are clamped
  }
  EXPECT_TRUE(session.finished());
  TuneResult chunked = session.Result();

  EXPECT_EQ(whole.best, chunked.best);
  EXPECT_EQ(whole.best_cost, chunked.best_cost);
  EXPECT_EQ(whole.evaluations, chunked.evaluations);
  EXPECT_EQ(whole.elapsed_minutes, chunked.elapsed_minutes);
  EXPECT_EQ(whole.stop_reason, chunked.stop_reason);
  ASSERT_EQ(whole.trace.size(), chunked.trace.size());
  for (std::size_t i = 0; i < whole.trace.size(); ++i) {
    EXPECT_EQ(whole.trace[i].time_minutes, chunked.trace[i].time_minutes);
    EXPECT_EQ(whole.trace[i].best_cost, chunked.trace[i].best_cost);
  }
}

TEST(SessionTest, PartialGrantMatchesTighterTimeLimit) {
  // A session paused after 30 granted minutes reports exactly what a tuner
  // whose hard limit was 30 minutes would — only the stop reason differs
  // (the session can still be resumed).
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  auto eval = [](const merlin::DesignConfig& cfg) -> EvalOutcome {
    double c = 10.0 + static_cast<double>(cfg.loops.at(0).parallel);
    return {true, c, 5.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 120;
  options.seed = 7;
  TuneSession session(space, eval, options);
  session.RunFor(30.0);
  EXPECT_FALSE(session.finished());
  TuneResult paused = session.Result();
  EXPECT_EQ(paused.stop_reason, "budget exhausted");

  options.time_limit_minutes = 30;
  TuneResult tight = Tune(space, eval, options);
  EXPECT_EQ(paused.best_cost, tight.best_cost);
  EXPECT_EQ(paused.evaluations, tight.evaluations);
  EXPECT_EQ(paused.elapsed_minutes, tight.elapsed_minutes);
}

TEST(SessionTest, HistoryConsistentWithTraceAndCount) {
  // The unclipped history the scheduler clips against: one commit time per
  // database record, and the trace is exactly the in-limit improvements.
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  auto eval = [](const merlin::DesignConfig& cfg) -> EvalOutcome {
    double c = 10.0 + static_cast<double>(cfg.loops.at(0).parallel) +
               static_cast<double>(cfg.buffer_bits.at("in")) / 64.0;
    return {true, c, 5.0};
  };
  TuneOptions options;
  options.time_limit_minutes = 90;
  options.parallel = 4;
  options.seed = 3;
  TuneResult r = Tune(space, eval, options);

  EXPECT_EQ(r.eval_times_minutes.size(), r.evaluations);
  std::size_t in_limit = 0;
  double prev = 0;
  for (const BestUpdate& up : r.improvements) {
    EXPECT_GE(up.time_minutes, prev);  // improvements are chronological
    prev = up.time_minutes;
    if (up.time_minutes > options.time_limit_minutes) continue;
    ASSERT_LT(in_limit, r.trace.size());
    EXPECT_EQ(r.trace[in_limit].time_minutes, up.time_minutes);
    EXPECT_EQ(r.trace[in_limit].best_cost, up.cost);
    ++in_limit;
  }
  EXPECT_EQ(in_limit, r.trace.size());
  if (r.found_feasible && !r.improvements.empty()) {
    EXPECT_EQ(r.improvements.back().cost, r.best_cost);
    EXPECT_TRUE(r.improvements.back().config == r.best_config);
  }
}

// -------------------------------------------------------------- database

TEST(DatabaseTest, TracksChangedFactorsAndTrace) {
  ResultDatabase db;
  Point a{0, 0, 0};
  Point b{0, 1, 2};
  EXPECT_TRUE(db.Add(a, 10.0, true, 1.0, 0));
  EXPECT_FALSE(db.Add(b, 20.0, true, 2.0, 1));  // worse: not a new best
  EXPECT_TRUE(db.Add(b, 5.0, true, 3.0, 1));
  ASSERT_EQ(db.records().size(), 3u);
  EXPECT_EQ(db.records()[1].changed_factors, (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(db.records()[1].changed_factors.size() == 2);
  EXPECT_EQ(db.best_cost(), 5.0);
  ASSERT_EQ(db.trace().size(), 2u);
  EXPECT_EQ(db.trace()[1].best_cost, 5.0);
}

TEST(DatabaseTest, InfeasibleNeverBest) {
  ResultDatabase db;
  EXPECT_FALSE(db.Add({0}, 1.0, false, 1.0, 0));
  EXPECT_FALSE(db.has_best());
  EXPECT_THROW(db.best(), InvalidArgument);
}

TEST(DatabaseTest, ExplicitParentAttributesMutatedFactors) {
  // In a parallel batch the previous record is another technique's
  // proposal; changed_factors must diff against the proposing technique's
  // own parent instead.
  ResultDatabase db;
  Point a{0, 0, 0};
  Point b{1, 1, 0};
  Point c{1, 0, 1};
  db.Add(a, 10.0, true, 1.0, 0, /*parent=*/nullptr);
  EXPECT_TRUE(db.records()[0].changed_factors.empty());  // seeds/randoms
  db.Add(b, 8.0, true, 2.0, 0, &a);
  EXPECT_EQ(db.records()[1].changed_factors,
            (std::vector<std::size_t>{0, 1}));
  // c's parent is a, NOT the immediately preceding record b.
  db.Add(c, 6.0, true, 3.0, 1, &a);
  EXPECT_EQ(db.records()[2].changed_factors,
            (std::vector<std::size_t>{0, 2}));
  // The 5-arg overload keeps the legacy prev-record diff.
  db.Add(a, 7.0, true, 4.0, 0);
  EXPECT_EQ(db.records()[3].changed_factors,
            (std::vector<std::size_t>{0, 2}));
}

// ------------------------------------------------- bottleneck technique

const hls::BottleneckKind kAllKinds[] = {
    hls::BottleneckKind::kNone,         hls::BottleneckKind::kRecurrenceII,
    hls::BottleneckKind::kMemoryPortII, hls::BottleneckKind::kAxiBandwidth,
    hls::BottleneckKind::kBramCap,      hls::BottleneckKind::kDspCap,
    hls::BottleneckKind::kFfCap,        hls::BottleneckKind::kLutCap,
    hls::BottleneckKind::kFreqCongestion,
    hls::BottleneckKind::kRoutingWall};

TEST(BottleneckTest, EveryKindDeclaresAParsableFactorSubset) {
  for (hls::BottleneckKind kind : kAllKinds) {
    const auto& moves = BottleneckMoves(kind);
    EXPECT_FALSE(moves.empty()) << hls::BottleneckKindName(kind);
    for (const BottleneckMove& move : moves) {
      // A typo in the map must fail fast, like FactorIndex: parsing every
      // declared class here pins that none of them can silently no-op.
      EXPECT_NO_THROW(ParseFactorClass(move.factor_class))
          << hls::BottleneckKindName(kind) << " -> " << move.factor_class;
    }
  }
}

TEST(BottleneckTest, ParseFactorClassUnknownThrowsListingValid) {
  try {
    ParseFactorClass("bogus");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no factor class named 'bogus'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("parallel"), std::string::npos) << what;
  }
}

TEST(BottleneckTest, ProposalsTouchOnlyTheDeclaredSubset) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  for (hls::BottleneckKind kind : kAllKinds) {
    // The declared subset, resolved to factor kinds.
    std::set<FactorKind> allowed;
    for (const BottleneckMove& move : BottleneckMoves(kind)) {
      allowed.insert(ParseFactorClass(move.factor_class));
    }
    BottleneckTechnique tech(&space);
    Rng rng(11);
    Point best = space.RandomPoint(rng);
    hls::Bottleneck bneck;
    bneck.kind = kind;
    bneck.quantity = 3.0;
    tech.ObserveEvaluation(best, 10.0, /*feasible=*/true, bneck);
    ASSERT_EQ(tech.current_bottleneck().kind, kind);
    for (int iter = 0; iter < 64; ++iter) {
      Point p = tech.Propose(rng);
      space.ValidatePoint(p);
      ASSERT_NE(tech.last_proposal_base(), nullptr);
      EXPECT_EQ(*tech.last_proposal_base(), best);
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i] != best[i]) {
          EXPECT_EQ(allowed.count(space.factors[i].kind), 1u)
              << hls::BottleneckKindName(kind) << " mutated factor "
              << space.factors[i].name;
        }
      }
    }
  }
}

TEST(BottleneckTest, ProposesRandomlyBeforeAnyObservation) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  BottleneckTechnique tech(&space);
  Rng rng(13);
  Point p = tech.Propose(rng);
  space.ValidatePoint(p);
  EXPECT_EQ(tech.last_proposal_base(), nullptr);
}

TEST(BottleneckTest, TracksGlobalBestAcrossObservations) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  BottleneckTechnique tech(&space);
  Rng rng(17);
  Point first = space.RandomPoint(rng);
  Point better = space.RandomPoint(rng);
  hls::Bottleneck rec{hls::BottleneckKind::kRecurrenceII, 7.0, 5.0};
  hls::Bottleneck port{hls::BottleneckKind::kMemoryPortII, 4.0, 2.0};
  tech.ObserveEvaluation(first, 10.0, true, rec);
  EXPECT_EQ(tech.current_bottleneck().kind,
            hls::BottleneckKind::kRecurrenceII);
  // Worse and infeasible observations never displace the best...
  tech.ObserveEvaluation(better, 50.0, true, port);
  tech.ObserveEvaluation(better, 1.0, false, port);
  EXPECT_EQ(tech.current_bottleneck().kind,
            hls::BottleneckKind::kRecurrenceII);
  // ...a strictly better feasible one does, attribution included.
  tech.ObserveEvaluation(better, 5.0, true, port);
  EXPECT_EQ(tech.current_bottleneck().kind,
            hls::BottleneckKind::kMemoryPortII);
  Point p = tech.Propose(rng);
  ASSERT_NE(tech.last_proposal_base(), nullptr);
  EXPECT_EQ(*tech.last_proposal_base(), better);
  (void)p;
}

TEST(BottleneckTest, MakeTechniquesRosters) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  // Empty roster = the default four, in the paper's order.
  auto def = MakeTechniques(&space, 3, {});
  ASSERT_EQ(def.size(), 4u);
  EXPECT_EQ(def[0]->name(), "UniformGreedyMutation");
  EXPECT_EQ(def[3]->name(), "SimulatedAnnealing");
  // "bandit" expands to the four; "bottleneck" appends the guided arm.
  auto extended = MakeTechniques(&space, 3, {"bandit", "bottleneck"});
  ASSERT_EQ(extended.size(), 5u);
  EXPECT_EQ(extended[4]->name(), "BottleneckGuided");
  // Unknown names fail fast with the available roster.
  try {
    MakeTechniques(&space, 3, {"bogus"});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no technique named 'bogus'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("bottleneck"), std::string::npos) << what;
  }
}

TEST(BottleneckTest, ParseTechniqueListSplitsAndTrims) {
  auto names = ParseTechniqueList(" bandit , bottleneck ,, ");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "bandit");
  EXPECT_EQ(names[1], "bottleneck");
  EXPECT_TRUE(ParseTechniqueList("").empty());
}

TEST(DriverTest, TechniquesRosterDeterministicAndDefaultUnchanged) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  auto eval = [&](const merlin::DesignConfig& cfg) -> EvalOutcome {
    EvalOutcome outcome;
    outcome.feasible = true;
    outcome.cost = 10.0 + static_cast<double>(cfg.loops.at(0).parallel) +
                   static_cast<double>(cfg.buffer_bits.at("in")) / 64.0;
    outcome.eval_minutes = 5.0;
    outcome.bottleneck.kind = hls::BottleneckKind::kMemoryPortII;
    outcome.bottleneck.quantity = 2.0;
    return outcome;
  };
  TuneOptions options;
  options.time_limit_minutes = 60;
  options.seed = 2018;
  // An explicitly spelled default roster is bit-identical to the empty one.
  TuneResult implicit = Tune(space, eval, options);
  options.techniques = {"bandit"};
  TuneResult spelled = Tune(space, eval, options);
  EXPECT_EQ(implicit.best, spelled.best);
  EXPECT_EQ(implicit.best_cost, spelled.best_cost);
  EXPECT_EQ(implicit.evaluations, spelled.evaluations);
  // The extended roster is deterministic for a fixed seed.
  options.techniques = {"bandit", "bottleneck"};
  TuneResult a = Tune(space, eval, options);
  TuneResult b = Tune(space, eval, options);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(TechniqueTest, ProposalBaseTracksTheMutatedPoint) {
  DesignSpace space = BuildDesignSpace(TwoLoopKernel());
  UniformGreedyMutation greedy(&space);
  Rng rng(3);
  greedy.Propose(rng);
  // No best yet: the draw was random, there is nothing to attribute.
  EXPECT_EQ(greedy.last_proposal_base(), nullptr);

  Point best = space.RandomPoint(rng);
  greedy.Report(best, 5.0, /*feasible=*/true);
  greedy.Propose(rng);
  ASSERT_NE(greedy.last_proposal_base(), nullptr);
  EXPECT_EQ(*greedy.last_proposal_base(), best);
}

}  // namespace
}  // namespace s2fa::tuner
