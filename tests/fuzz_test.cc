// Differential fuzzing of the whole front end.
//
// A generator produces random *structured* kernels at the bytecode level —
// tuple inputs with array/scalar fields, canonical counted loops, if/else
// over float comparisons, arithmetic with guarded divisions, math
// intrinsics, and helper-method calls — exactly the shape the supported
// Scala subset lowers to. Each kernel is then pinned three ways:
//
//   1. the bytecode interpreter (JVM semantics),
//   2. the b2c-compiled kernel IR run through the IR evaluator,
//   3. the IR evaluator again after a random legal Merlin transform.
//
// All three must agree bit-for-bit on random inputs: the compiler's
// end-to-end correctness obligation (paper Challenge 1), probed over many
// random programs instead of hand-picked ones.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>

#include "b2c/compiler.h"
#include "jvm/assembler.h"
#include "jvm/interpreter.h"
#include "jvm/verifier.h"
#include "kir/eval.h"
#include "merlin/transform.h"
#include "support/rng.h"

namespace s2fa {
namespace {

using jvm::Assembler;
using jvm::Cond;
using jvm::MethodSignature;
using jvm::Type;
using jvm::Value;

constexpr int kNumArrays = 2;   // float-array fields of the input tuple
constexpr int kArrayLen = 8;    // per-task elements of each array field

// Local variable slots of the generated `call(FuzzIn in)` method:
//   0 = in (ref), 1..kNumArrays = array refs, 3 = scalar field,
//   4 = accumulator, 5 = loop index, 6 = scratch temp.
constexpr int kScalarSlot = 3;
constexpr int kAccSlot = 4;
constexpr int kLoopSlot = 5;
constexpr int kTempSlot = 6;

// Emits bytecode that leaves one float on the operand stack.
class ExprGen {
 public:
  ExprGen(Assembler& a, Rng& rng, bool allow_acc)
      : a_(a), rng_(rng), allow_acc_(allow_acc) {}

  void Emit(int depth) {
    const int max_choice = depth <= 0 ? 3 : 9;
    switch (rng_.NextInt(0, max_choice)) {
      case 0:
        a_.FConst(static_cast<float>(rng_.NextDouble(-2.0, 2.0)));
        break;
      case 1:
        a_.Load(Type::Float(), kScalarSlot);
        break;
      case 2: {
        int arr = 1 + static_cast<int>(rng_.NextIndex(kNumArrays));
        a_.Load(Type::Array(Type::Float()), arr);
        a_.Load(Type::Int(), kLoopSlot);
        a_.ALoadElem(Type::Float());
        break;
      }
      case 3:
        if (allow_acc_) {
          a_.Load(Type::Float(), kAccSlot);
        } else {
          a_.FConst(0.75f);
        }
        break;
      case 4:
      case 5: {
        Emit(depth - 1);
        Emit(depth - 1);
        switch (rng_.NextInt(0, 3)) {
          case 0: a_.FAdd(); break;
          case 1: a_.FSub(); break;
          case 2: a_.FMul(); break;
          default:
            // a / (|b| + 0.5): keeps the divisor away from zero.
            a_.Convert(Type::Float(), Type::Double());
            a_.InvokeStatic("java/lang/Math", "abs");
            a_.Convert(Type::Double(), Type::Float());
            a_.FConst(0.5f).FAdd();
            a_.FDiv();
            break;
        }
        break;
      }
      case 6:
        Emit(depth - 1);
        a_.Neg(Type::Float());
        break;
      case 7:
        Emit(depth - 1);
        Emit(depth - 1);
        a_.Bin(Type::Float(),
               rng_.NextBool() ? jvm::BinOp::kMin : jvm::BinOp::kMax);
        break;
      case 8:
        // sqrt(|x|) via Math intrinsics (domain stays valid).
        Emit(depth - 1);
        a_.Convert(Type::Float(), Type::Double());
        a_.InvokeStatic("java/lang/Math", "abs");
        a_.InvokeStatic("java/lang/Math", "sqrt");
        a_.Convert(Type::Double(), Type::Float());
        break;
      default:
        // Helper call (exercises the inliner).
        Emit(depth - 1);
        a_.InvokeStatic("FuzzKernel", "helper");
        break;
    }
  }

 private:
  Assembler& a_;
  Rng& rng_;
  bool allow_acc_;
};

// Emits one random statement updating the accumulator (inside the loop).
void EmitLoopStatement(Assembler& a, Rng& rng) {
  switch (rng.NextInt(0, 2)) {
    case 0: {
      // acc = acc + <expr>
      a.Load(Type::Float(), kAccSlot);
      ExprGen(a, rng, /*allow_acc=*/false).Emit(2);
      a.FAdd().Store(Type::Float(), kAccSlot);
      break;
    }
    case 1: {
      // t = <expr>; acc = acc + t * t   (private temp)
      ExprGen(a, rng, false).Emit(2);
      a.Store(Type::Float(), kTempSlot);
      a.Load(Type::Float(), kAccSlot);
      a.Load(Type::Float(), kTempSlot).Load(Type::Float(), kTempSlot).FMul();
      a.FAdd().Store(Type::Float(), kAccSlot);
      break;
    }
    default: {
      // if (<e1> < <e2>) acc = acc + <e3>  [else acc = acc - <e4>]
      auto skip = a.NewLabel();
      ExprGen(a, rng, false).Emit(1);
      ExprGen(a, rng, false).Emit(1);
      a.Cmp(Type::Float());
      const bool has_else = rng.NextBool();
      if (!has_else) {
        a.If(Cond::kGe, skip);
        a.Load(Type::Float(), kAccSlot);
        ExprGen(a, rng, false).Emit(1);
        a.FAdd().Store(Type::Float(), kAccSlot);
        a.Bind(skip);
      } else {
        auto done = a.NewLabel();
        a.If(Cond::kGe, skip);
        a.Load(Type::Float(), kAccSlot);
        ExprGen(a, rng, false).Emit(1);
        a.FAdd().Store(Type::Float(), kAccSlot);
        a.Goto(done);
        a.Bind(skip);
        a.Load(Type::Float(), kAccSlot);
        ExprGen(a, rng, false).Emit(1);
        a.FSub().Store(Type::Float(), kAccSlot);
        a.Bind(done);
      }
      break;
    }
  }
}

struct FuzzCase {
  std::shared_ptr<jvm::ClassPool> pool;
  b2c::KernelSpec spec;
};

FuzzCase GenerateKernel(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase fc;
  fc.pool = std::make_shared<jvm::ClassPool>();

  jvm::Klass& in = fc.pool->Define("FuzzIn");
  in.AddField({"_1", Type::Array(Type::Float())});
  in.AddField({"_2", Type::Array(Type::Float())});
  in.AddField({"_3", Type::Float()});

  jvm::Klass& k = fc.pool->Define("FuzzKernel");
  {
    // static float helper(float x) { return x * 0.5f + 1.0f; }
    Assembler a;
    a.Load(Type::Float(), 0).FConst(0.5f).FMul().FConst(1.0f).FAdd();
    a.Ret(Type::Float());
    MethodSignature sig;
    sig.params = {Type::Float()};
    sig.ret = Type::Float();
    k.AddMethod(jvm::MakeMethod("helper", sig, true, 1, a.Finish()));
  }
  {
    Assembler a;
    const Type fa = Type::Array(Type::Float());
    a.Load(Type::Class("FuzzIn"), 0).GetField("FuzzIn", "_1").Store(fa, 1);
    a.Load(Type::Class("FuzzIn"), 0).GetField("FuzzIn", "_2").Store(fa, 2);
    a.Load(Type::Class("FuzzIn"), 0).GetField("FuzzIn", "_3")
        .Store(Type::Float(), kScalarSlot);
    a.FConst(0.0f).Store(Type::Float(), kAccSlot);
    // One or two canonical counted loops, 1-3 statements each.
    const int loops = static_cast<int>(rng.NextInt(1, 2));
    for (int l = 0; l < loops; ++l) {
      a.IConst(0).Store(Type::Int(), kLoopSlot);
      auto head = a.NewLabel();
      auto exit = a.NewLabel();
      a.Bind(head);
      a.Load(Type::Int(), kLoopSlot).IConst(kArrayLen)
          .IfICmp(Cond::kGe, exit);
      const int stmts = static_cast<int>(rng.NextInt(1, 3));
      for (int s = 0; s < stmts; ++s) EmitLoopStatement(a, rng);
      a.IInc(kLoopSlot, 1);
      a.Goto(head);
      a.Bind(exit);
    }
    a.Load(Type::Float(), kAccSlot).Ret(Type::Float());
    MethodSignature sig;
    sig.params = {Type::Class("FuzzIn")};
    sig.ret = Type::Float();
    k.AddMethod(jvm::MakeMethod("call", sig, true, 7, a.Finish()));
  }

  fc.spec.kernel_name = "fuzz_kernel";
  fc.spec.klass = "FuzzKernel";
  fc.spec.input.type = Type::Class("FuzzIn");
  fc.spec.input.fields = {{"_1", Type::Float(), kArrayLen, true},
                          {"_2", Type::Float(), kArrayLen, true},
                          {"_3", Type::Float(), 1, false}};
  fc.spec.output.type = Type::Float();
  fc.spec.output.fields = {{"ret", Type::Float(), 1, false}};
  fc.spec.batch = 16;
  return fc;
}

// Draws a random legal Merlin config for `kernel`.
merlin::DesignConfig RandomLegalConfig(const kir::Kernel& kernel, Rng& rng) {
  merlin::DesignConfig cfg;
  for (const kir::Stmt* loop : kernel.Loops()) {
    merlin::LoopConfig lc;
    std::vector<std::int64_t> tiles{1};
    for (std::int64_t t = 2; t < loop->trip_count(); ++t) {
      if (loop->trip_count() % t == 0) tiles.push_back(t);
    }
    lc.tile = tiles[rng.NextIndex(tiles.size())];
    std::int64_t max_par = lc.tile > 1 ? lc.tile : loop->trip_count();
    lc.parallel = rng.NextInt(1, max_par);
    lc.pipeline = static_cast<merlin::PipelineMode>(rng.NextInt(0, 2));
    cfg.loops[loop->loop_id()] = lc;
  }
  for (const auto& buf : kernel.buffers) {
    if (buf.kind == kir::BufferKind::kLocal) continue;
    const std::int64_t widths[] = {32, 64, 128, 256, 512};
    cfg.buffer_bits[buf.name] =
        static_cast<int>(widths[rng.NextIndex(5)]);
  }
  return cfg;
}

// Discriminates Value kinds for bit-exact comparison.
int ValueKind(const Value& v) {
  if (v.is_int()) return 0;
  if (v.is_long()) return 1;
  if (v.is_float()) return 2;
  if (v.is_double()) return 3;
  return 4;
}

// Raw bit pattern of a numeric Value (NaN payloads preserved).
std::uint64_t ValueBits(const Value& v) {
  if (v.is_int()) return static_cast<std::uint32_t>(v.AsInt());
  if (v.is_long()) return static_cast<std::uint64_t>(v.AsLong());
  if (v.is_float()) {
    float f = v.AsFloat();
    std::uint32_t b = 0;
    std::memcpy(&b, &f, sizeof(b));
    return b;
  }
  double d = v.AsDouble();
  std::uint64_t b = 0;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

// Requires the slot-resolved and reference evaluators to produce
// bit-identical buffer maps (every buffer, every element, including NaN
// bit patterns) and to charge the same step count on `kernel`.
void ExpectEvaluatorsBitIdentical(const kir::Kernel& kernel,
                                  const std::map<std::string, Value>& scalars,
                                  const kir::BufferMap& inputs) {
  kir::BufferMap fast_bufs = inputs;
  kir::BufferMap ref_bufs = inputs;
  kir::Evaluator fast(kernel);
  fast.Run(scalars, fast_bufs);
  kir::ReferenceEvaluator ref(kernel);
  ref.Run(scalars, ref_bufs);
  ASSERT_EQ(fast.last_steps(), ref.last_steps());
  ASSERT_EQ(fast_bufs.size(), ref_bufs.size());
  for (const auto& [name, fast_data] : fast_bufs) {
    auto it = ref_bufs.find(name);
    ASSERT_NE(it, ref_bufs.end()) << "buffer " << name;
    ASSERT_EQ(fast_data.size(), it->second.size()) << "buffer " << name;
    for (std::size_t e = 0; e < fast_data.size(); ++e) {
      ASSERT_EQ(ValueKind(fast_data[e]), ValueKind(it->second[e]))
          << "buffer " << name << " element " << e;
      ASSERT_EQ(ValueBits(fast_data[e]), ValueBits(it->second[e]))
          << "buffer " << name << " element " << e;
    }
  }
}

// Runs one fuzz case: interpreter vs compiled IR vs transformed IR.
void RunDifferential(std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  FuzzCase fc = GenerateKernel(seed);

  // The generator must only produce verifiable bytecode.
  jvm::VerifyOrThrow(*fc.pool,
                     fc.pool->Get("FuzzKernel").GetMethod("call"));

  kir::Kernel kernel = b2c::CompileKernel(*fc.pool, fc.spec);

  // Random inputs for one batch.
  Rng drng(seed ^ 0xDA7AULL);
  const std::size_t batch = static_cast<std::size_t>(fc.spec.batch);
  std::vector<float> a1(batch * kArrayLen), a2(batch * kArrayLen);
  std::vector<float> s(batch);
  for (auto& v : a1) v = static_cast<float>(drng.NextDouble(-3, 3));
  for (auto& v : a2) v = static_cast<float>(drng.NextDouble(-3, 3));
  for (auto& v : s) v = static_cast<float>(drng.NextDouble(-3, 3));

  // 1. Interpreter, record by record.
  jvm::Heap heap;
  jvm::Interpreter interp(*fc.pool, heap);
  std::vector<float> expect(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    jvm::Ref v1 = heap.NewArray(Type::Array(Type::Float()), kArrayLen);
    jvm::Ref v2 = heap.NewArray(Type::Array(Type::Float()), kArrayLen);
    for (int e = 0; e < kArrayLen; ++e) {
      heap.Get(v1).slots[static_cast<std::size_t>(e)] =
          Value::OfFloat(a1[r * kArrayLen + static_cast<std::size_t>(e)]);
      heap.Get(v2).slots[static_cast<std::size_t>(e)] =
          Value::OfFloat(a2[r * kArrayLen + static_cast<std::size_t>(e)]);
    }
    jvm::Ref obj = heap.NewInstance(Type::Class("FuzzIn"), 3);
    heap.Get(obj).slots[0] = Value::OfRef(v1);
    heap.Get(obj).slots[1] = Value::OfRef(v2);
    heap.Get(obj).slots[2] = Value::OfFloat(s[r]);
    expect[r] = interp.Invoke("FuzzKernel", "call", {Value::OfRef(obj)})
                    .ret.AsFloat();
  }

  // 2. Compiled IR through the evaluator.
  auto run_ir = [&](const kir::Kernel& k) {
    kir::BufferMap buffers;
    for (float v : a1) buffers["in_1"].push_back(Value::OfFloat(v));
    for (float v : a2) buffers["in_2"].push_back(Value::OfFloat(v));
    for (float v : s) buffers["in_3"].push_back(Value::OfFloat(v));
    kir::Evaluator(k).Run(
        {{"N", Value::OfInt(static_cast<std::int32_t>(batch))}}, buffers);
    std::vector<float> out(batch);
    for (std::size_t r = 0; r < batch; ++r) {
      out[r] = buffers["out_1"][r].AsFloat();
    }
    return out;
  };

  std::vector<float> compiled = run_ir(kernel);
  for (std::size_t r = 0; r < batch; ++r) {
    ASSERT_EQ(compiled[r], expect[r]) << "record " << r;
  }

  // 3. Three random Merlin transforms of the same kernel.
  Rng crng(seed ^ 0xC0F1ULL);
  for (int t = 0; t < 3; ++t) {
    merlin::DesignConfig cfg = RandomLegalConfig(kernel, crng);
    ASSERT_TRUE(merlin::ValidateConfig(kernel, cfg).empty())
        << cfg.ToString();
    kir::Kernel transformed = merlin::ApplyDesign(kernel, cfg).kernel;
    std::vector<float> got = run_ir(transformed);
    for (std::size_t r = 0; r < batch; ++r) {
      ASSERT_EQ(got[r], expect[r])
          << "record " << r << " config " << cfg.ToString();
    }
  }

  // 4. Slot-resolved vs reference evaluator must agree bit-for-bit on
  //    every buffer (and on step counts) — on the compiled kernel and on
  //    a random transform of it.
  kir::BufferMap inputs;
  for (float v : a1) inputs["in_1"].push_back(Value::OfFloat(v));
  for (float v : a2) inputs["in_2"].push_back(Value::OfFloat(v));
  for (float v : s) inputs["in_3"].push_back(Value::OfFloat(v));
  const std::map<std::string, Value> scalars = {
      {"N", Value::OfInt(static_cast<std::int32_t>(batch))}};
  ExpectEvaluatorsBitIdentical(kernel, scalars, inputs);
  Rng trng(seed ^ 0x51D3ULL);
  merlin::DesignConfig cfg = RandomLegalConfig(kernel, trng);
  ExpectEvaluatorsBitIdentical(merlin::ApplyDesign(kernel, cfg).kernel,
                               scalars, inputs);
}

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, InterpreterCompilerAndMerlinAgree) {
  // 8 random kernels per gtest parameter.
  for (int k = 0; k < 8; ++k) {
    RunDifferential(static_cast<std::uint64_t>(GetParam()) * 1000 +
                    static_cast<std::uint64_t>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Range(0, 12));

TEST(FuzzGeneratorTest, ProducesVerifiableKernels) {
  for (std::uint64_t seed = 500; seed < 540; ++seed) {
    FuzzCase fc = GenerateKernel(seed);
    jvm::VerifyResult r = jvm::Verify(
        *fc.pool, fc.pool->Get("FuzzKernel").GetMethod("call"));
    EXPECT_TRUE(r.ok) << "seed " << seed << ": "
                      << (r.errors.empty() ? "" : r.errors[0]);
  }
}

// Negative fuzzing: corrupting structural invariants of valid bytecode
// (branch targets, local slots) must be caught by the verifier — never
// silently mis-verified.
class CorruptionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionFuzz, VerifierRejectsStructuralCorruption) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 5);
  for (int k = 0; k < 10; ++k) {
    FuzzCase fc = GenerateKernel(800 + static_cast<std::uint64_t>(
                                           GetParam() * 10 + k));
    jvm::Method method = fc.pool->Get("FuzzKernel").GetMethod("call");
    // Corrupt one instruction structurally.
    std::size_t pc = rng.NextIndex(method.code.size());
    jvm::Insn& insn = method.code[pc];
    switch (rng.NextInt(0, 2)) {
      case 0:  // branch target out of range
        if (!jvm::IsBranch(insn.op)) continue;
        insn.target = method.code.size() + 17;
        break;
      case 1:  // local slot out of range
        if (insn.op != jvm::Opcode::kLoad &&
            insn.op != jvm::Opcode::kStore) {
          continue;
        }
        insn.slot = method.max_locals + 3;
        break;
      default:  // truncate the method (drops the return / splits blocks)
        if (method.code.size() < 4) continue;
        method.code.resize(method.code.size() / 2);
        break;
    }
    jvm::VerifyResult r = jvm::Verify(*fc.pool, method);
    EXPECT_FALSE(r.ok) << "seed " << GetParam() << " case " << k
                       << " pc " << pc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz, ::testing::Range(0, 6));

TEST(FuzzGeneratorTest, KernelsAreDeterministicPerSeed) {
  FuzzCase a = GenerateKernel(42);
  FuzzCase b = GenerateKernel(42);
  const auto& ca = a.pool->Get("FuzzKernel").GetMethod("call").code;
  const auto& cb = b.pool->Get("FuzzKernel").GetMethod("call").code;
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].ToString(), cb[i].ToString()) << i;
  }
}

}  // namespace
}  // namespace s2fa
