#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "b2c/compiler.h"
#include "blaze/cluster.h"
#include "jvm/assembler.h"
#include "s2fa/framework.h"

namespace s2fa::blaze {
namespace {

using jvm::Assembler;
using jvm::MethodSignature;
using jvm::Type;
using jvm::Value;

// Doubler: double -> 2 * double, batch 8 (the blaze_test kernel).
jvm::ClassPool MakePool() {
  jvm::ClassPool pool;
  Assembler a;
  a.Load(Type::Double(), 0).DConst(2.0).DMul().Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double()};
  sig.ret = Type::Double();
  pool.Define("Doubler").AddMethod(
      jvm::MakeMethod("call", sig, true, 2, a.Finish()));
  return pool;
}

b2c::KernelSpec MakeSpec(std::int64_t batch = 8) {
  b2c::KernelSpec spec;
  spec.kernel_name = "doubler";
  spec.klass = "Doubler";
  spec.input.type = Type::Double();
  spec.input.fields = {{"x", Type::Double(), 1, false}};
  spec.output.type = Type::Double();
  spec.output.fields = {{"y", Type::Double(), 1, false}};
  spec.batch = batch;
  return spec;
}

Dataset DoublerInput(int n, int base = 0) {
  Dataset input;
  Column x;
  x.field = "x";
  x.element = Type::Double();
  for (int i = 0; i < n; ++i) x.data.push_back(Value::OfDouble(base + i));
  input.AddColumn(x);
  return input;
}

// A runtime with `replicas` doubler copies registered as r0, r1, ... and a
// cluster that spreads them one per shard across `shards` shards
// (round-robin when replicas > shards).
struct Fixture {
  BlazeRuntime runtime;
  explicit Fixture(int replicas = 2) {
    jvm::ClassPool pool = MakePool();
    Artifact artifact =
        BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
    for (int i = 0; i < replicas; ++i) {
      RegisterWithBlaze(runtime, "r" + std::to_string(i), artifact);
    }
  }
  BlazeCluster MakeCluster(ClusterOptions options = {}, int shards = 2,
                           int replicas = 2) {
    BlazeCluster cluster(runtime, options);
    for (int s = 0; s < shards; ++s) cluster.AddShard();
    for (int i = 0; i < replicas; ++i) {
      cluster.AddReplica(static_cast<std::size_t>(i % shards), "doubler",
                         "r" + std::to_string(i));
    }
    return cluster;
  }
};

ClusterRequest Req(int records, double arrival_us = 0,
                   const std::string& tenant = "default", int base = 0) {
  ClusterRequest request;
  request.kernel = "doubler";
  request.input = DoublerInput(records, base);
  request.arrival_us = arrival_us;
  request.tenant = tenant;
  return request;
}

bool IsShed(const ClusterRequestOutcome& outcome) {
  return outcome.outcome == ClusterServe::kRejectedFull ||
         outcome.outcome == ClusterServe::kTenantThrottled;
}

// Every served request must return exactly its doubled input, whatever path
// (accelerator, host, hedge, failover retry) served it.
void ExpectDoubled(const ClusterRequestOutcome& outcome, int records,
                   int base = 0) {
  ASSERT_EQ(outcome.output.num_records(), static_cast<std::size_t>(records))
      << "request " << outcome.id;
  const Column& y = outcome.output.ColumnByField("y");
  for (int i = 0; i < records; ++i) {
    EXPECT_DOUBLE_EQ(y.data[static_cast<std::size_t>(i)].AsDouble(),
                     2.0 * (base + i))
        << "request " << outcome.id << " record " << i;
  }
}

// Bit-exact canonical rendering of a drain's outcomes.
std::string Canon(const std::vector<ClusterRequestOutcome>& outcomes) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& o : outcomes) {
    os << o.id << '|' << ClusterServeName(o.outcome) << '|' << o.shard << '|'
       << o.replica << '|' << o.tenant << '|' << o.batch_size << '|'
       << o.redirects << '|' << o.hedged << o.poisoned << '|' << o.dispatch_us
       << '|' << o.complete_us << '|' << o.latency_us << '|';
    for (std::size_t c = 0; c < o.output.num_columns(); ++c) {
      for (const auto& v : o.output.column(c).data) os << v.AsDouble() << ',';
    }
    os << '\n';
  }
  return os.str();
}

// ------------------------------------------------------------ chaos plan

TEST(ChaosPlanTest, ParsesEveryDirective) {
  ChaosPlan plan = ParseChaosPlan(
      "kill 1 @ 2ms; restart 1 @ 5ms\n"
      "burst 3:4 @ 0; burst 10:2\n"
      "spike 3.5 @ 1ms + 500us\n"
      "flood noisy @ 2ms + 1ms x 100\n"
      "poison 7, 9; poison-rate 0.25 / 42");
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_EQ(plan.kills[0].shard, 1u);
  EXPECT_DOUBLE_EQ(plan.kills[0].at_us, 2000.0);
  ASSERT_EQ(plan.restarts.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.restarts[0].at_us, 5000.0);
  ASSERT_EQ(plan.bursts.size(), 2u);
  ASSERT_TRUE(plan.bursts[0].shard.has_value());
  EXPECT_EQ(*plan.bursts[0].shard, 0u);
  EXPECT_FALSE(plan.bursts[1].shard.has_value());
  ASSERT_EQ(plan.spikes.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.spikes[0].factor, 3.5);
  EXPECT_DOUBLE_EQ(plan.spikes[0].duration_us, 500.0);
  ASSERT_EQ(plan.floods.size(), 1u);
  EXPECT_EQ(plan.floods[0].tenant, "noisy");
  EXPECT_EQ(plan.floods[0].requests, 100u);
  EXPECT_EQ(plan.poison_ids, (std::vector<std::size_t>{7, 9}));
  EXPECT_DOUBLE_EQ(plan.poison_rate, 0.25);
  EXPECT_EQ(plan.poison_seed, 42u);
  EXPECT_FALSE(plan.Empty());
  EXPECT_TRUE(ParseChaosPlan("  \n ; ;\n").Empty());
}

TEST(ChaosPlanTest, RejectsMalformedSchedules) {
  EXPECT_THROW(ParseChaosPlan("explode 1 @ 2ms"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("kill 1"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("kill 1 @ -5"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("kill 1 @ 2ms extra"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("burst 3:0"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("spike 0.5 @ 0 + 1ms"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("flood t @ 0 + 1ms x 0"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("poison 1, 1"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("poison-rate 1.5"), MalformedInput);
  // Lifecycle must alternate kill, restart, ... per shard in time order.
  EXPECT_THROW(ParseChaosPlan("restart 0 @ 1ms"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("kill 0 @ 1ms; kill 0 @ 2ms"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("kill 0 @ 1ms; restart 0 @ 1ms"),
               MalformedInput);
  // Overlapping windows on the same target are order-dependent: rejected.
  EXPECT_THROW(ParseChaosPlan("burst 0:4 @ 1; burst 2:4 @ 1"),
               MalformedInput);
  EXPECT_THROW(ParseChaosPlan("burst 0:4; burst 2:4 @ 1"), MalformedInput);
  EXPECT_THROW(ParseChaosPlan("spike 2 @ 0 + 10; spike 3 @ 5 + 10"),
               MalformedInput);
  // Disjoint scoped bursts are fine.
  EXPECT_NO_THROW(ParseChaosPlan("burst 0:4 @ 0; burst 0:4 @ 1"));
}

// Runs `fn` and returns the MalformedInput message it throws (statements
// are whitespace-stripped before parsing, so messages quote the stripped
// form). A schedule typo must name the exact statement and reason — these
// messages are load-bearing operator UX, so they are pinned verbatim.
template <typename Fn>
std::string MalformedMessageOf(Fn&& fn) {
  try {
    fn();
  } catch (const MalformedInput& e) {
    return e.what();
  }
  return "<no MalformedInput thrown>";
}

TEST(ChaosPlanTest, MalformedStatementMessagesAreExact) {
  auto message = [](const std::string& text) {
    return MalformedMessageOf([&] { ParseChaosPlan(text); });
  };

  // Parser-level failures name the reason and the offending statement.
  EXPECT_EQ(message("explode 1 @ 2ms"),
            "chaos plan: unknown directive in 'explode1@2ms'");
  EXPECT_EQ(message("kill 1"), "chaos plan: expected '@' in 'kill1'");
  EXPECT_EQ(message("kill x @ 2ms"),
            "chaos plan: expected a non-negative integer in 'killx@2ms'");
  EXPECT_EQ(message("kill 1 @ -5"),
            "chaos plan: expected a number in 'kill1@-5'");
  EXPECT_EQ(message("kill 1 @ 2ms extra"),
            "chaos plan: trailing junk in 'kill1@2msextra'");
  EXPECT_EQ(message("burst 3"), "chaos plan: expected ':' in 'burst3'");
  EXPECT_EQ(message("burst 3:0"),
            "chaos plan: burst length must be >= 1 in 'burst3:0'");
  EXPECT_EQ(message("spike @ 0 + 1"),
            "chaos plan: expected a number in 'spike@0+1'");
  EXPECT_EQ(message("spike 1..5 @ 0 + 1"),
            "chaos plan: bad number '1..5' in 'spike1..5@0+1'");
  EXPECT_EQ(message("spike 0.5 @ 0 + 1ms"),
            "chaos plan: spike factor must be > 1 in 'spike0.5@0+1ms'");
  EXPECT_EQ(message("spike 2 @ 0"),
            "chaos plan: expected '+' in 'spike2@0'");
  EXPECT_EQ(message("spike 2 @ 0 + 0"),
            "chaos plan: spike duration must be > 0 in 'spike2@0+0'");
  EXPECT_EQ(message("flood @ 0 + 1 x 1"),
            "chaos plan: expected a name in 'flood@0+1x1'");
  EXPECT_EQ(message("flood t @ 0 + 1ms"),
            "chaos plan: expected 'x' in 'floodt@0+1ms'");
  EXPECT_EQ(message("flood t @ 0 + 1ms x 0"),
            "chaos plan: flood request count must be >= 1 in "
            "'floodt@0+1msx0'");
  EXPECT_EQ(message("poison-rate 1.5"),
            "chaos plan: poison rate must be in [0, 1] in 'poison-rate1.5'");
  EXPECT_EQ(message("poison-rate 0.1; poison-rate 0.2"),
            "chaos plan: duplicate poison-rate directive in "
            "'poison-rate0.2'");

  // Validation-level failures describe the structural conflict.
  EXPECT_EQ(message("poison 1, 1"),
            "chaos plan: duplicate poison request id");
  EXPECT_EQ(message("kill 0 @ 1ms; kill 0 @ 1ms"),
            "chaos plan: shard 0 has two lifecycle events at "
            "t=1000.000000us");
  EXPECT_EQ(message("kill 0 @ 1ms; kill 0 @ 2ms"),
            "chaos plan: shard 0 lifecycle must alternate kill/restart in "
            "time order (event 1 at t=2000.000000us is a kill)");
  EXPECT_EQ(message("restart 0 @ 1ms"),
            "chaos plan: shard 0 lifecycle must alternate kill/restart in "
            "time order (event 0 at t=1000.000000us is a restart)");
  EXPECT_EQ(message("burst 0:4 @ 1; burst 2:4 @ 1"),
            "chaos plan: fault bursts [0:4) and [2:4) overlap on the same "
            "target");
  EXPECT_EQ(message("spike 2 @ 0 + 10; spike 3 @ 5 + 10"),
            "chaos plan: latency spikes overlap (their composition would "
            "be order-dependent)");
}

TEST(ChaosPlanTest, ValidateMessagesForHandBuiltPlansAreExact) {
  // Structural checks reachable only through hand-built plans (the parser
  // sorts poison ids and bounds fields before validation runs).
  ChaosPlan unsorted;
  unsorted.poison_ids = {5, 3};
  EXPECT_EQ(MalformedMessageOf([&] { ValidateChaosPlan(unsorted); }),
            "chaos plan: poison ids must be sorted");
  ChaosPlan bad_rate;
  bad_rate.poison_rate = 1.5;
  EXPECT_EQ(MalformedMessageOf([&] { ValidateChaosPlan(bad_rate); }),
            "chaos plan: poison rate must be in [0, 1]");
  ChaosPlan zero_burst;
  zero_burst.bursts.push_back({{4, 0}, std::nullopt});
  EXPECT_EQ(MalformedMessageOf([&] { ValidateChaosPlan(zero_burst); }),
            "chaos plan: burst length must be >= 1");
  ChaosPlan zero_flood;
  zero_flood.floods.push_back({"t", 0, 100.0, 0});
  EXPECT_EQ(MalformedMessageOf([&] { ValidateChaosPlan(zero_flood); }),
            "chaos plan: flood request count must be >= 1");
  ChaosPlan shrink;
  shrink.spikes.push_back({0.5, 0, 100.0});
  EXPECT_EQ(MalformedMessageOf([&] { ValidateChaosPlan(shrink); }),
            "chaos plan: spike factor must be > 1 and finite");
  ChaosPlan flat;
  flat.spikes.push_back({2.0, 0, 0.0});
  EXPECT_EQ(MalformedMessageOf([&] { ValidateChaosPlan(flat); }),
            "chaos plan: spike duration must be > 0");
}

TEST(ChaosPlanTest, ValidateRejectsHandBuiltInvalidPlans) {
  // ChaosPlan is a public struct: plans that never went through the
  // parser must fail the same structural checks.
  ChaosPlan inverted;
  inverted.restarts.push_back({0, 100.0});  // restart with no prior kill
  EXPECT_THROW(ValidateChaosPlan(inverted), MalformedInput);
  ChaosPlan unsorted;
  unsorted.poison_ids = {5, 3};
  EXPECT_THROW(ValidateChaosPlan(unsorted), MalformedInput);
  ChaosPlan shrink;
  shrink.spikes.push_back({0.5, 0, 100.0});  // factor <= 1 shrinks time
  EXPECT_THROW(ValidateChaosPlan(shrink), MalformedInput);
  ChaosPlan ok = ParseChaosPlan("kill 0 @ 1ms; restart 0 @ 2ms; poison 3, 5");
  EXPECT_NO_THROW(ValidateChaosPlan(ok));
}

TEST(ChaosPlanTest, PoisonVerdictIsStateless) {
  ChaosPlan plan = ParseChaosPlan("poison 3; poison-rate 0.2 / 7");
  EXPECT_TRUE(IsPoisoned(plan, 3));
  int sampled = 0;
  for (std::size_t id = 100; id < 600; ++id) {
    const bool first = IsPoisoned(plan, id);
    EXPECT_EQ(first, IsPoisoned(plan, id));  // stateless replay
    sampled += first ? 1 : 0;
  }
  EXPECT_GT(sampled, 50);
  EXPECT_LT(sampled, 150);
}

// -------------------------------------------------------------- topology

TEST(ClusterTest, ValidatesTopologyAndPlans) {
  Fixture fx(2);
  BlazeCluster cluster(fx.runtime);
  EXPECT_THROW(cluster.AddReplica(0, "doubler", "r0"), Error);  // no shard
  cluster.AddShard();
  cluster.AddReplica(0, "doubler", "r0");
  EXPECT_THROW(cluster.AddReplica(0, "doubler", "r0"), Error);  // duplicate
  cluster.AddTenant("a", 2.0, 10);
  EXPECT_THROW(cluster.AddTenant("a", 1.0, 0), Error);
  EXPECT_THROW(cluster.AddTenant("b", 0.0, 0), Error);
  EXPECT_THROW(cluster.SetChaosPlan(ParseChaosPlan("kill 5 @ 1ms")), Error);
  EXPECT_THROW(cluster.SetChaosPlan(ParseChaosPlan("flood ghost @ 0 + 1 x 1")),
               Error);
  // Hand-built plans are re-validated by SetChaosPlan, not trusted.
  ChaosPlan inverted;
  inverted.restarts.push_back({0, 100.0});
  EXPECT_THROW(cluster.SetChaosPlan(inverted), MalformedInput);
  // Floods need a generator by drain time.
  cluster.SetChaosPlan(ParseChaosPlan("flood a @ 0 + 1ms x 3"));
  cluster.Submit(Req(4));
  EXPECT_THROW(cluster.Drain(), Error);
  ClusterRequest bad;
  bad.kernel = "nope";
  EXPECT_THROW(cluster.Submit(bad), Error);
}

// -------------------------------------------------------------- batching

TEST(ClusterTest, BatchingCoalescesSameKernelRequests) {
  Fixture fx(2);
  ClusterOptions options;
  options.batch_max_requests = 4;
  BlazeCluster cluster = fx.MakeCluster(options);
  std::vector<ClusterRequest> requests;
  for (int i = 0; i < 8; ++i) requests.push_back(Req(8, 0, "default", 8 * i));
  auto outcomes = cluster.Run(std::move(requests));
  ASSERT_EQ(outcomes.size(), 8u);
  for (int i = 0; i < 8; ++i) ExpectDoubled(outcomes[static_cast<std::size_t>(i)], 8, 8 * i);
  EXPECT_GE(cluster.stats().max_batch, 2u);
  EXPECT_LE(cluster.stats().max_batch, 4u);
  EXPECT_GT(cluster.stats().batched_requests, cluster.stats().batches);
}

TEST(ClusterTest, BatchWindowHoldsForLateArrivals) {
  Fixture fx(1);
  ClusterOptions options;
  options.batch_max_requests = 2;
  options.batch_window_us = 200;
  BlazeCluster cluster = fx.MakeCluster(options, 1, 1);
  // Second request lands inside the first one's window: one batch of two.
  auto outcomes = cluster.Run({Req(8, 0, "default", 0),
                               Req(8, 100, "default", 8)});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].batch_size, 2u);
  EXPECT_EQ(outcomes[1].batch_size, 2u);
  ExpectDoubled(outcomes[0], 8, 0);
  ExpectDoubled(outcomes[1], 8, 8);
  EXPECT_EQ(cluster.stats().batches, 1u);
}

// -------------------------------------------------------------- reduce

// SumSq reduce kernel: double call(double acc, double x) = acc + x * x
// (the b2c_test reduce kernel). Reduce outputs one record per request,
// whatever its input record count — the slicing regression this guards.
jvm::ClassPool MakeSumSqPool() {
  jvm::ClassPool pool;
  Assembler a;
  a.Load(Type::Double(), 0);
  a.Load(Type::Double(), 2).Load(Type::Double(), 2).DMul();
  a.DAdd().Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double(), Type::Double()};
  sig.ret = Type::Double();
  pool.Define("SumSqKernel").AddMethod(
      jvm::MakeMethod("call", sig, true, 4, a.Finish()));
  return pool;
}

b2c::KernelSpec SumSqSpec(std::int64_t batch = 8) {
  b2c::KernelSpec spec;
  spec.kernel_name = "sumsq";
  spec.klass = "SumSqKernel";
  spec.pattern = kir::ParallelPattern::kReduce;
  spec.input.type = Type::Double();
  spec.input.fields = {{"x", Type::Double(), 1, false}};
  spec.output.type = Type::Double();
  spec.output.fields = {{"ret", Type::Double(), 1, false}};
  spec.batch = batch;
  return spec;
}

TEST(ClusterTest, ReduceRequestsServeUnslicedThroughTheCluster) {
  BlazeRuntime runtime;
  jvm::ClassPool pool = MakeSumSqPool();
  Artifact artifact =
      BuildWithConfig(pool, SumSqSpec(8), merlin::DesignConfig{});
  for (int i = 0; i < 2; ++i) {
    RegisterWithBlaze(runtime, "s" + std::to_string(i), artifact);
  }
  ClusterOptions options;
  options.batch_max_requests = 8;  // reduce must still cap batches at 1
  BlazeCluster cluster(runtime, options);
  for (int s = 0; s < 2; ++s) cluster.AddShard();
  for (int i = 0; i < 2; ++i) {
    cluster.AddReplica(static_cast<std::size_t>(i % 2), "sumsq",
                       "s" + std::to_string(i));
  }
  std::vector<ClusterRequest> requests;
  for (int r = 0; r < 6; ++r) {
    ClusterRequest request;
    request.kernel = "sumsq";
    request.input = DoublerInput(16, r);  // multi-record inputs
    requests.push_back(std::move(request));
  }
  auto outcomes = cluster.Run(std::move(requests));
  ASSERT_EQ(outcomes.size(), 6u);
  for (int r = 0; r < 6; ++r) {
    const auto& o = outcomes[static_cast<std::size_t>(r)];
    EXPECT_FALSE(IsShed(o));
    EXPECT_EQ(o.batch_size, 1u) << "reduce batched across requests";
    ASSERT_EQ(o.output.num_records(), 1u);
    double expect = 0;
    for (int i = 0; i < 16; ++i) {
      expect += static_cast<double>(r + i) * (r + i);
    }
    EXPECT_DOUBLE_EQ(o.output.ColumnByField("ret").data[0].AsDouble(), expect)
        << "request " << r;
  }
  // The accelerator path — where slicing a 1-record reduce output by the
  // input count used to read out of bounds — actually served traffic.
  EXPECT_GT(cluster.stats().completed_accel, 0u);
}

// ------------------------------------------------------------- failover

TEST(ClusterTest, FailoverRedirectsToSiblingExactlyOnce) {
  Fixture fx(2);
  BlazeCluster cluster = fx.MakeCluster({}, 2, 2);
  // Kill shard 0 almost immediately: anything routed there requeues and
  // must complete on shard 1 (or host), exactly once, correct output.
  cluster.SetChaosPlan(ParseChaosPlan("kill 0 @ 1us"));
  std::vector<ClusterRequest> requests;
  for (int i = 0; i < 6; ++i) requests.push_back(Req(8, 0, "default", 8 * i));
  auto outcomes = cluster.Run(std::move(requests));
  ASSERT_EQ(outcomes.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    const auto& o = outcomes[static_cast<std::size_t>(i)];
    EXPECT_FALSE(IsShed(o));
    EXPECT_NE(o.shard, 0u) << "committed on a dead shard";
    ExpectDoubled(o, 8, 8 * i);
  }
  const ClusterStats& stats = cluster.stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.shards[0].kills, 1u);
  // Shard 0 never commits anything after its kill.
  EXPECT_EQ(stats.shards[0].requests, 0u);
}

TEST(ClusterTest, KillMidBatchRequeuesWithoutLoss) {
  Fixture fx(2);
  BlazeCluster cluster = fx.MakeCluster({}, 2, 2);
  // Route a first wave to learn the batch latency, then kill shard 0 in
  // the middle of the second wave's service window.
  BlazeCluster probe = fx.MakeCluster({}, 1, 1);
  auto probe_out = probe.Run({Req(8)});
  const double batch_us = probe_out[0].complete_us;
  ASSERT_GT(batch_us, 0);
  std::ostringstream plan;
  plan << "kill 0 @ " << batch_us / 2 << "us";
  cluster.SetChaosPlan(ParseChaosPlan(plan.str()));
  std::vector<ClusterRequest> requests;
  for (int i = 0; i < 8; ++i) requests.push_back(Req(8, 0, "default", 8 * i));
  auto outcomes = cluster.Run(std::move(requests));
  ASSERT_EQ(outcomes.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const auto& o = outcomes[static_cast<std::size_t>(i)];
    EXPECT_FALSE(IsShed(o));
    ExpectDoubled(o, 8, 8 * i);
  }
  EXPECT_EQ(cluster.stats().completed, 8u);
  EXPECT_GE(cluster.stats().failovers + cluster.stats().redirects, 0u);
}

TEST(ClusterTest, RestartRejoinsAndServesAgain) {
  Fixture fx(2);
  BlazeCluster cluster = fx.MakeCluster({}, 2, 2);
  cluster.SetChaosPlan(ParseChaosPlan("kill 0 @ 1us; restart 0 @ 2ms"));
  EXPECT_TRUE(cluster.ShardAliveAt(0, 0.5));
  EXPECT_FALSE(cluster.ShardAliveAt(0, 1000.0));
  EXPECT_TRUE(cluster.ShardAliveAt(0, 2000.0));
  std::vector<ClusterRequest> requests;
  // First wave while shard 0 is dead; second wave well after the restart.
  for (int i = 0; i < 4; ++i) requests.push_back(Req(8, 0, "w1", 8 * i));
  for (int i = 4; i < 12; ++i) {
    requests.push_back(Req(8, 50e3 + 4e3 * (i - 4), "w2", 8 * i));
  }
  auto outcomes = cluster.Run(std::move(requests));
  ASSERT_EQ(outcomes.size(), 12u);
  bool shard0_served_late = false;
  for (int i = 0; i < 12; ++i) {
    const auto& o = outcomes[static_cast<std::size_t>(i)];
    EXPECT_FALSE(IsShed(o));
    ExpectDoubled(o, 8, 8 * i);
    if (o.shard == 0) {
      EXPECT_GE(o.dispatch_us, 2000.0) << "served on shard 0 while dead";
      shard0_served_late = true;
    }
  }
  // Post-restart traffic rebalances onto the revived shard.
  EXPECT_TRUE(shard0_served_late);
  EXPECT_EQ(cluster.stats().shards[0].restarts, 1u);
}

// --------------------------------------------------------------- routing

TEST(ClusterTest, ParseRoutingRoundTripsAndRejectsExactly) {
  EXPECT_EQ(ParseRouting("health"), Routing::kHealth);
  EXPECT_EQ(ParseRouting("depth"), Routing::kDepth);
  EXPECT_STREQ(RoutingName(Routing::kHealth), "health");
  EXPECT_STREQ(RoutingName(Routing::kDepth), "depth");
  try {
    ParseRouting("fastest");
    FAIL() << "expected MalformedInput";
  } catch (const MalformedInput& e) {
    EXPECT_STREQ(e.what(),
                 "routing policy must be 'health' or 'depth', got 'fastest'");
  }
}

TEST(ClusterTest, DepthRoutingAvoidsHiddenHostBacklogWithoutLoss) {
  // A host fallback frees the shard's dispatch lane as soon as the
  // accelerator-side failure is detected, but the shard's service clock
  // runs ahead to the (expensive) host completion. Health routing scores
  // lane occupancy only, so the faulting shard looks BOTH idle and
  // under-occupied and keeps attracting traffic that silently serializes
  // behind the invisible host work. Depth routing scores that outstanding
  // backlog directly and steers around it. Same workload, same fault
  // budget on both policies: nothing may be lost, and depth's tail must
  // be strictly better.
  auto run = [](Routing routing) {
    OffloadCostModel model;
    model.host_slowdown = 2000.0;  // host fallbacks are genuinely painful
    BlazeRuntime runtime(model);
    jvm::ClassPool pool = MakePool();
    Artifact artifact =
        BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
    RegisterWithBlaze(runtime, "r0", artifact);
    RegisterWithBlaze(runtime, "r1", artifact);
    ClusterOptions options;
    options.routing = routing;
    options.batch_max_requests = 1;  // one routing decision per request
    BlazeCluster cluster(runtime, options);
    cluster.AddShard();
    cluster.AddShard();
    cluster.AddReplica(0, "doubler", "r0");  // single replica: no sibling,
    cluster.AddReplica(1, "doubler", "r1");  // faults fall back to host
    // Fault shard 0's first three invocations. Both policies pay the same
    // per-fault price (detect + host completion); the difference is whether
    // later traffic stacks up behind the hidden host work.
    cluster.SetChaosPlan(ParseChaosPlan("burst 0:3 @ 0"));
    std::vector<ClusterRequest> requests;
    int base = 0;
    // Noisy tenant floods; light tenant trickles. Arrivals never collide
    // and the spacing leaves both dispatch lanes free at every arrival, so
    // the routing score — not the one-batch-per-shard gate — decides who
    // eats the backlog.
    for (int i = 0; i < 20; ++i) {
      requests.push_back(Req(8, 150.0 * i, "noisy", base));
      base += 8;
    }
    for (int i = 0; i < 5; ++i) {
      requests.push_back(Req(8, 675.0 + 600.0 * i, "light", base));
      base += 8;
    }
    auto outcomes = cluster.Run(std::move(requests));
    EXPECT_EQ(outcomes.size(), 25u);
    int expected_base = 0;
    for (const auto& o : outcomes) {
      EXPECT_FALSE(IsShed(o)) << RoutingName(routing) << " lost request "
                              << o.id;
      ExpectDoubled(o, 8, expected_base);
      expected_base += 8;
    }
    EXPECT_EQ(cluster.stats().completed, 25u);
    return cluster.stats();
  };
  const ClusterStats health = run(Routing::kHealth);
  const ClusterStats depth = run(Routing::kDepth);
  // Depth routes around the shard that owes host work, so victims of the
  // fault burst never serialize behind each other's hidden backlog.
  EXPECT_LT(depth.LatencyQuantile(0.99), health.LatencyQuantile(0.99));
  EXPECT_LE(depth.LatencyQuantile(0.5), health.LatencyQuantile(0.5));
}

// ---------------------------------------------------------------- poison

TEST(ClusterTest, PoisonIsolationBisectsToTheCulprit) {
  Fixture fx(1);
  ClusterOptions options;
  options.batch_max_requests = 8;
  options.batch_window_us = 50;
  BlazeCluster cluster = fx.MakeCluster(options, 1, 1);
  cluster.SetChaosPlan(ParseChaosPlan("poison 3"));
  std::vector<ClusterRequest> requests;
  for (int i = 0; i < 8; ++i) requests.push_back(Req(8, 0, "default", 8 * i));
  auto outcomes = cluster.Run(std::move(requests));
  ASSERT_EQ(outcomes.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const auto& o = outcomes[static_cast<std::size_t>(i)];
    EXPECT_FALSE(IsShed(o));
    ExpectDoubled(o, 8, 8 * i);  // the poison request still gets its answer
    if (i == 3) {
      EXPECT_TRUE(o.poisoned);
      EXPECT_EQ(o.outcome, ClusterServe::kHost);  // degraded alone
    } else {
      EXPECT_FALSE(o.poisoned);
    }
  }
  const ClusterStats& stats = cluster.stats();
  EXPECT_EQ(stats.poison_isolated, 1u);
  // Bisecting one poison out of a batch of 8 burns log2-ish attempts:
  // {8} {4} {2} {1} on the failing path.
  EXPECT_GE(stats.bisect_attempts, 3u);
  EXPECT_LE(stats.bisect_attempts, 4u);
  // Clean siblings still ride the accelerator.
  EXPECT_GT(stats.completed_accel, 0u);
}

TEST(ClusterTest, CleanBatchesPayNoBisectTax) {
  Fixture fx(1);
  ClusterOptions options;
  options.batch_max_requests = 8;
  BlazeCluster cluster = fx.MakeCluster(options, 1, 1);
  std::vector<ClusterRequest> requests;
  for (int i = 0; i < 8; ++i) requests.push_back(Req(8, 0, "default", 8 * i));
  auto outcomes = cluster.Run(std::move(requests));
  EXPECT_EQ(cluster.stats().bisect_attempts, 0u);
  EXPECT_EQ(cluster.stats().poison_isolated, 0u);
  for (const auto& o : outcomes) EXPECT_FALSE(o.poisoned);
}

TEST(ClusterTest, SpikeDilatesBisectBurnsLinearly) {
  // The poison request's completion is dispatch + spike * burn + host
  // time: linear in the spike factor. A factor that compounded across the
  // bisect chain (spike^2) would break the equal spacing below.
  auto poisoned_complete = [](const std::string& plan) {
    Fixture fx(1);
    ClusterOptions options;
    options.batch_max_requests = 8;
    BlazeCluster cluster = fx.MakeCluster(options, 1, 1);
    cluster.SetChaosPlan(ParseChaosPlan(plan));
    std::vector<ClusterRequest> requests;
    for (int i = 0; i < 8; ++i) {
      requests.push_back(Req(8, 0, "default", 8 * i));
    }
    auto outcomes = cluster.Run(std::move(requests));
    EXPECT_EQ(outcomes[0].outcome, ClusterServe::kHost);  // isolated alone
    return outcomes[0].complete_us;
  };
  const double c1 = poisoned_complete("poison 0");
  const double c2 = poisoned_complete("poison 0; spike 2 @ 0 + 1s");
  const double c3 = poisoned_complete("poison 0; spike 3 @ 0 + 1s");
  ASSERT_GT(c2, c1);  // the spike does slow the burn down
  EXPECT_NEAR(c3 - c2, c2 - c1, 1e-6 * c3);
}

// -------------------------------------------------------------- fairness

TEST(ClusterTest, WeightedFairSharesUnderContention) {
  Fixture fx(1);
  ClusterOptions options;
  options.batch_max_requests = 1;  // per-request scheduling: clean shares
  BlazeCluster cluster = fx.MakeCluster(options, 1, 1);
  cluster.AddTenant("heavy", 3.0, 0);
  cluster.AddTenant("light", 1.0, 0);
  std::vector<ClusterRequest> requests;
  for (int i = 0; i < 24; ++i) requests.push_back(Req(8, 0, "heavy", 8 * i));
  for (int i = 0; i < 24; ++i) requests.push_back(Req(8, 0, "light", 8 * i));
  auto outcomes = cluster.Run(std::move(requests));
  ASSERT_EQ(outcomes.size(), 48u);
  // Among the first 16 dispatches, heavy should get ~3x light's slots.
  std::vector<std::pair<double, std::string>> order;
  for (const auto& o : outcomes) order.emplace_back(o.dispatch_us, o.tenant);
  std::sort(order.begin(), order.end());
  int heavy_early = 0;
  for (int i = 0; i < 16; ++i) heavy_early += order[static_cast<std::size_t>(i)].second == "heavy" ? 1 : 0;
  EXPECT_GE(heavy_early, 10);  // 3:1 stride => 12 of 16, allow slack
  EXPECT_LE(heavy_early, 14);
  // And the light tenant is not starved: its p99 stays bounded relative
  // to the heavy tenant's.
  const TenantStats& light = cluster.stats().tenants.at("light");
  const TenantStats& heavy = cluster.stats().tenants.at("heavy");
  EXPECT_EQ(light.completed, 24u);
  EXPECT_EQ(heavy.completed, 24u);
  EXPECT_LT(light.LatencyQuantile(0.5), 2.5 * heavy.LatencyQuantile(0.99));
}

TEST(ClusterTest, TenantQuotaThrottlesTheFlooder) {
  Fixture fx(1);
  ClusterOptions options;
  options.queue_capacity = 256;
  BlazeCluster cluster = fx.MakeCluster(options, 1, 1);
  cluster.AddTenant("noisy", 1.0, 4);   // at most 4 queued at once
  cluster.AddTenant("quiet", 1.0, 0);
  std::vector<ClusterRequest> requests;
  for (int i = 0; i < 32; ++i) requests.push_back(Req(8, 0, "noisy", 8 * i));
  for (int i = 0; i < 4; ++i) requests.push_back(Req(8, 0, "quiet", 8 * i));
  auto outcomes = cluster.Run(std::move(requests));
  const TenantStats& noisy = cluster.stats().tenants.at("noisy");
  const TenantStats& quiet = cluster.stats().tenants.at("quiet");
  EXPECT_GT(noisy.throttled, 0u);
  EXPECT_EQ(noisy.admitted + noisy.throttled, 32u);
  EXPECT_EQ(quiet.admitted, 4u);
  EXPECT_EQ(quiet.throttled, 0u);
  for (const auto& o : outcomes) {
    if (o.tenant == "quiet") {
      EXPECT_FALSE(IsShed(o)) << "quota must shield, not harm, the quiet one";
    }
    if (!IsShed(o)) EXPECT_EQ(o.output.num_records(), 8u);
  }
}

TEST(ClusterTest, ChaosFloodIsThrottledByQuota) {
  Fixture fx(1);
  ClusterOptions options;
  options.queue_capacity = 512;
  options.batch_max_requests = 1;  // no coalescing: the flood must queue
  BlazeCluster cluster = fx.MakeCluster(options, 1, 1);
  cluster.AddTenant("noisy", 1.0, 4);
  cluster.AddTenant("quiet", 1.0, 0);
  cluster.SetChaosPlan(ParseChaosPlan("flood noisy @ 0 + 500us x 64"));
  cluster.SetFloodGenerator([](std::size_t ordinal) {
    return Req(8, 0, "ignored", static_cast<int>(8 * ordinal));
  });
  std::vector<ClusterRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(Req(8, 2e3 * i, "quiet", 8 * i));
  }
  auto outcomes = cluster.Run(std::move(requests));
  // Only the real requests come back, all served.
  ASSERT_EQ(outcomes.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(outcomes[static_cast<std::size_t>(i)].tenant, "quiet");
    EXPECT_FALSE(IsShed(outcomes[static_cast<std::size_t>(i)]));
    ExpectDoubled(outcomes[static_cast<std::size_t>(i)], 8, 8 * i);
  }
  const ClusterStats& stats = cluster.stats();
  EXPECT_EQ(stats.flood_injected, 64u);
  EXPECT_GT(stats.tenants.at("noisy").throttled, 0u);
  EXPECT_EQ(stats.tenants.at("quiet").throttled, 0u);
}

TEST(ClusterTest, EmptyDrainsMaterializeDueFloods) {
  Fixture fx(1);
  BlazeCluster cluster = fx.MakeCluster({}, 1, 1);
  cluster.AddTenant("noisy", 1.0, 0);
  cluster.SetChaosPlan(ParseChaosPlan("flood noisy @ 0 + 1us x 4"));
  cluster.SetFloodGenerator([](std::size_t ordinal) {
    return Req(8, 0, "ignored", static_cast<int>(8 * ordinal));
  });
  // No real traffic at all: the already-due flood request (t=0) must
  // still inject instead of hanging pending forever.
  EXPECT_TRUE(cluster.Drain().empty());
  EXPECT_EQ(cluster.stats().flood_injected, 1u);
  // Serving it advanced the cluster clock past the rest of the schedule,
  // so the next (still traffic-less) drain materializes the remainder.
  EXPECT_TRUE(cluster.Drain().empty());
  EXPECT_EQ(cluster.stats().flood_injected, 4u);
  EXPECT_EQ(cluster.stats().completed, 4u);
}

// ----------------------------------------------------------- exactly-once

TEST(ClusterTest, HedgeVsFailoverCommitsExactlyOnce) {
  Fixture fx(2);
  ClusterOptions options;
  options.queue_hedge_us = 10;  // hedge aggressively: force the race
  BlazeCluster cluster = fx.MakeCluster(options, 2, 2);
  cluster.SetChaosPlan(
      ParseChaosPlan("kill 0 @ 300us; kill 1 @ 350us; burst 0:6"));
  std::vector<ClusterRequest> requests;
  for (int i = 0; i < 12; ++i) requests.push_back(Req(8, 0, "default", 8 * i));
  auto outcomes = cluster.Run(std::move(requests));
  ASSERT_EQ(outcomes.size(), 12u);
  std::set<std::size_t> ids;
  for (int i = 0; i < 12; ++i) {
    const auto& o = outcomes[static_cast<std::size_t>(i)];
    EXPECT_TRUE(ids.insert(o.id).second);
    EXPECT_FALSE(IsShed(o));
    ExpectDoubled(o, 8, 8 * i);  // one committed answer, and it is right
  }
  EXPECT_EQ(cluster.stats().completed, 12u);
  EXPECT_EQ(cluster.stats().hedges_won + cluster.stats().hedges_cancelled,
            cluster.stats().hedges_launched);
}

TEST(ClusterTest, HedgedDrainsDoNotLeakQueueStateAcrossDrains) {
  // A hedge that wins while its request still sits in a tenant queue
  // leaves the (drain-local) slot index behind; a later drain must not
  // see it alias — or overrun — its own, smaller slots vector.
  Fixture fx(1);
  ClusterOptions options;
  options.batch_max_requests = 1;  // serialize: later requests wait queued
  options.queue_hedge_us = 5;      // hedges win while slots are queued
  BlazeCluster cluster = fx.MakeCluster(options, 1, 1);
  std::vector<ClusterRequest> first;
  for (int i = 0; i < 12; ++i) first.push_back(Req(8, 0, "default", 8 * i));
  auto wave1 = cluster.Run(std::move(first));
  ASSERT_EQ(wave1.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    ExpectDoubled(wave1[static_cast<std::size_t>(i)], 8, 8 * i);
  }
  // The race this guards requires at least one queued hedge win.
  EXPECT_GT(cluster.stats().hedges_won, 0u);
  auto wave2 = cluster.Run({Req(8, 0, "default", 96)});
  ASSERT_EQ(wave2.size(), 1u);
  ExpectDoubled(wave2[0], 8, 96);
  EXPECT_EQ(cluster.stats().completed, 13u);
}

// ------------------------------------------------------------ determinism

TEST(ClusterTest, OutcomesBitIdenticalAcrossExecThreads) {
  const std::string kPlan =
      "kill 0 @ 400us; restart 0 @ 2ms; burst 2:5 @ 1; "
      "spike 2.5 @ 1ms + 1ms; poison 5; poison-rate 0.05 / 9";
  std::string reference;
  for (int threads : {1, 2, 8}) {
    Fixture fx(4);
    ClusterOptions options;
    options.exec_threads = threads;
    options.batch_max_requests = 4;
    options.queue_hedge_us = 500;
    BlazeCluster cluster = fx.MakeCluster(options, 2, 4);
    cluster.AddTenant("a", 2.0, 0);
    cluster.AddTenant("b", 1.0, 8);
    cluster.SetChaosPlan(ParseChaosPlan(kPlan));
    std::vector<ClusterRequest> requests;
    for (int i = 0; i < 48; ++i) {
      requests.push_back(
          Req(8, 40.0 * i, i % 3 == 0 ? "b" : "a", 8 * i));
    }
    const std::string canon = Canon(cluster.Run(std::move(requests)));
    if (reference.empty()) {
      reference = canon;
    } else {
      EXPECT_EQ(canon, reference) << "exec_threads=" << threads;
    }
  }
  ASSERT_FALSE(reference.empty());
}

TEST(ClusterTest, RepeatRunsAreReproducible) {
  auto run = [] {
    Fixture fx(2);
    BlazeCluster cluster = fx.MakeCluster({}, 2, 2);
    cluster.SetChaosPlan(ParseChaosPlan("burst 1:3; poison 2"));
    std::vector<ClusterRequest> requests;
    for (int i = 0; i < 16; ++i) {
      requests.push_back(Req(8, 100.0 * i, "default", 8 * i));
    }
    return Canon(cluster.Run(std::move(requests)));
  };
  EXPECT_EQ(run(), run());
}

// --------------------------------------------------------------- shedding

TEST(ClusterTest, QueueCapacityShedsDeterministically) {
  Fixture fx(1);
  ClusterOptions options;
  options.queue_capacity = 4;
  BlazeCluster cluster = fx.MakeCluster(options, 1, 1);
  std::vector<ClusterRequest> requests;
  for (int i = 0; i < 32; ++i) requests.push_back(Req(8, 0, "default", 8 * i));
  auto outcomes = cluster.Run(std::move(requests));
  std::size_t shed = 0;
  for (const auto& o : outcomes) {
    if (o.outcome == ClusterServe::kRejectedFull) {
      ++shed;
      EXPECT_EQ(o.output.num_records(), 0u);
      EXPECT_DOUBLE_EQ(o.latency_us, 0.0);
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(cluster.stats().rejected_full, shed);
  EXPECT_EQ(cluster.stats().completed + shed, 32u);
}

}  // namespace
}  // namespace s2fa::blaze
