// Cross-module invariants that the experiment results rely on. Each test
// pins a behaviour that, if silently changed, would invalidate a claim in
// EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "b2c/compiler.h"
#include "hls/device.h"
#include "hls/estimator.h"
#include "jvm/assembler.h"
#include "jvm/interpreter.h"
#include "kir/analysis.h"
#include "merlin/transform.h"
#include "s2fa/framework.h"

namespace s2fa {
namespace {

using kir::BinaryOp;
using kir::BufferKind;
using kir::Expr;
using kir::Stmt;
using kir::Type;

// ---------------------------------------------------- operator library

TEST(OpLibraryTest, DoubleAddLatencyIsThirteen) {
  // The paper's LR analysis hinges on "the minimal initiation interval is
  // still 13": the strict-IEEE double accumulation chain.
  hls::OpCost dadd = hls::BinaryOpCost(BinaryOp::kAdd, Type::Double());
  EXPECT_EQ(dadd.latency, 13);
}

TEST(OpLibraryTest, DoublePrecisionCostsMoreThanSingle) {
  for (BinaryOp op : {BinaryOp::kAdd, BinaryOp::kMul, BinaryOp::kDiv}) {
    hls::OpCost f = hls::BinaryOpCost(op, Type::Float());
    hls::OpCost d = hls::BinaryOpCost(op, Type::Double());
    EXPECT_GE(d.latency, f.latency);
    EXPECT_GE(d.lut + d.ff + d.dsp * 100, f.lut + f.ff + f.dsp * 100);
  }
}

TEST(OpLibraryTest, TranscendentalsDominateArithmetic) {
  hls::OpCost exp_cost = hls::IntrinsicCost(kir::Intrinsic::kExp,
                                            Type::Float());
  hls::OpCost add_cost = hls::BinaryOpCost(BinaryOp::kAdd, Type::Float());
  EXPECT_GT(exp_cost.latency, add_cost.latency);
  EXPECT_GT(exp_cost.lut, add_cost.lut);
}

// ------------------------------------------------- associativity gate

Stmt* SingleLoop(kir::Kernel& k) { return k.Loops().front(); }

kir::Kernel AccumKernel(kir::ExprPtr update_rhs) {
  kir::Kernel k;
  k.name = "acc";
  k.buffers.push_back({"in", Type::Float(), 64, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Float(), 1, BufferKind::kOutput, ""});
  auto acc = Expr::Var("acc", Type::Float());
  auto loop = Stmt::For(0, "i", 64,
                        Stmt::Block({Stmt::Assign(acc, update_rhs)}));
  k.body = Stmt::Block(
      {Stmt::Decl("acc", Type::Float(), Expr::FloatLit(0.0f)), loop,
       Stmt::Assign(Expr::ArrayRef("out", Type::Float(), Expr::IntLit(0)),
                    acc)});
  k.task_loop_id = 0;
  return k;
}

kir::ExprPtr InElem() {
  return Expr::ArrayRef("in", Type::Float(), Expr::Var("i", Type::Int()));
}

TEST(AssociativityTest, PlainSumIsReduction) {
  auto acc = Expr::Var("acc", Type::Float());
  kir::Kernel k = AccumKernel(Expr::Binary(BinaryOp::kAdd, acc, InElem()));
  EXPECT_TRUE(kir::IsAssociativeReduction(*SingleLoop(k), "acc"));
}

TEST(AssociativityTest, MinMaxMulAreReductions) {
  for (BinaryOp op : {BinaryOp::kMin, BinaryOp::kMax, BinaryOp::kMul}) {
    auto acc = Expr::Var("acc", Type::Float());
    kir::Kernel k = AccumKernel(Expr::Binary(op, acc, InElem()));
    EXPECT_TRUE(kir::IsAssociativeReduction(*SingleLoop(k), "acc"))
        << kir::BinaryOpName(op);
  }
}

TEST(AssociativityTest, FirstOrderChainIsNotAReduction) {
  // acc = (acc + x) * y — the LR normalized chain.
  auto acc = Expr::Var("acc", Type::Float());
  auto rhs = Expr::Binary(BinaryOp::kMul,
                          Expr::Binary(BinaryOp::kAdd, acc, InElem()),
                          Expr::FloatLit(0.99f));
  kir::Kernel k = AccumKernel(rhs);
  EXPECT_FALSE(kir::IsAssociativeReduction(*SingleLoop(k), "acc"));
}

TEST(AssociativityTest, CarrierOnBothSidesIsNotAReduction) {
  auto acc = Expr::Var("acc", Type::Float());
  kir::Kernel k = AccumKernel(Expr::Binary(BinaryOp::kAdd, acc, acc));
  EXPECT_FALSE(kir::IsAssociativeReduction(*SingleLoop(k), "acc"));
}

TEST(AssociativityTest, CarrierInsideOperandIsNotAReduction) {
  // acc = acc + acc * x.
  auto acc = Expr::Var("acc", Type::Float());
  auto rhs = Expr::Binary(BinaryOp::kAdd, acc,
                          Expr::Binary(BinaryOp::kMul, acc, InElem()));
  kir::Kernel k = AccumKernel(rhs);
  EXPECT_FALSE(kir::IsAssociativeReduction(*SingleLoop(k), "acc"));
}

TEST(AssociativityTest, SubtractionIsNotAReduction) {
  auto acc = Expr::Var("acc", Type::Float());
  kir::Kernel k = AccumKernel(Expr::Binary(BinaryOp::kSub, acc, InElem()));
  EXPECT_FALSE(kir::IsAssociativeReduction(*SingleLoop(k), "acc"));
}

// -------------------------------------------------- frequency/routing

kir::Kernel StreamKernelWithPar(std::int64_t par,
                                merlin::DesignConfig* cfg_out) {
  kir::Kernel k;
  k.name = "stream";
  k.buffers.push_back({"in", Type::Int(), 1024, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Int(), 1024, BufferKind::kOutput, ""});
  auto i = Expr::Var("i", Type::Int());
  k.body = Stmt::Block({Stmt::For(
      0, "i", 1024,
      Stmt::Block({Stmt::Assign(
          Expr::ArrayRef("out", Type::Int(), i),
          Expr::Binary(BinaryOp::kAdd, Expr::ArrayRef("in", Type::Int(), i),
                       Expr::IntLit(1)))}))});
  k.task_loop_id = 0;
  merlin::DesignConfig cfg;
  cfg.loops[0] = {1, par, merlin::PipelineMode::kOn};
  *cfg_out = cfg;
  return k;
}

TEST(RoutingWallTest, FrequencyDropsSuperlinearlyPastTheKnee) {
  merlin::DesignConfig c128, c512;
  kir::Kernel k = StreamKernelWithPar(128, &c128);
  StreamKernelWithPar(512, &c512);
  double f128 =
      hls::EstimateHls(merlin::ApplyDesign(k, c128).kernel).freq_mhz;
  double f512 =
      hls::EstimateHls(merlin::ApplyDesign(k, c512).kernel).freq_mhz;
  EXPECT_GT(f128, f512);
  EXPECT_LT(f512, 130.0);  // well past the 256 knee
}

TEST(RoutingWallTest, FullUnrollOfHugeLoopFailsTiming) {
  merlin::DesignConfig cfg;
  kir::Kernel k = StreamKernelWithPar(1024, &cfg);
  hls::HlsResult r = hls::EstimateHls(merlin::ApplyDesign(k, cfg).kernel);
  EXPECT_FALSE(r.feasible);
}

TEST(ConstantMultiplyTest, StrengthReductionUsesNoDsp) {
  // x * 27 (constant) vs x * y (variable): only the latter takes DSPs.
  auto make = [&](bool constant) {
    kir::Kernel k;
    k.name = "mul";
    k.buffers.push_back({"in", Type::Int(), 64, BufferKind::kInput, ""});
    k.buffers.push_back({"out", Type::Int(), 64, BufferKind::kOutput, ""});
    auto i = Expr::Var("i", Type::Int());
    auto lhs = Expr::ArrayRef("in", Type::Int(), i);
    auto rhs = constant
                   ? Expr::IntLit(27)
                   : kir::ExprPtr(Expr::ArrayRef(
                         "in", Type::Int(),
                         Expr::Binary(BinaryOp::kXor, i, Expr::IntLit(1))));
    k.body = Stmt::Block({Stmt::For(
        0, "i", 64,
        Stmt::Block({Stmt::Assign(Expr::ArrayRef("out", Type::Int(), i),
                                  Expr::Binary(BinaryOp::kMul, lhs, rhs))}))});
    k.task_loop_id = 0;
    return hls::EstimateHls(k);
  };
  EXPECT_EQ(make(true).util.dsp, 0.0);
  EXPECT_GT(make(false).util.dsp, 0.0);
}

// ------------------------------------------------ frequency-aware DSE

TEST(FrequencyModelTest, AssumeTargetIgnoresClockMisses) {
  merlin::DesignConfig cfg;
  kir::Kernel k = StreamKernelWithPar(256, &cfg);  // clock-hostile design
  tuner::EvalFn aware = MakeHlsEvaluator(k, {}, FrequencyModel::kEstimated);
  tuner::EvalFn naive =
      MakeHlsEvaluator(k, {}, FrequencyModel::kAssumeTarget);
  tuner::EvalOutcome a = aware(cfg);
  tuner::EvalOutcome n = naive(cfg);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(n.feasible);
  // The naive objective scores the design as if it met 250 MHz; the
  // frequency-aware one charges the real (lower) clock.
  EXPECT_GT(a.cost, n.cost);
}

// --------------------------------------------------- JVM cost sanity

TEST(JvmCostTest, TranscendentalsDominateOnTheJvmToo) {
  jvm::CostModel model;
  jvm::Insn exp_call{};
  exp_call.op = jvm::Opcode::kInvoke;
  exp_call.invoke_kind = jvm::InvokeKind::kStatic;
  exp_call.owner = "java/lang/Math";
  exp_call.member = "exp";
  jvm::Insn add{};
  add.op = jvm::Opcode::kBinOp;
  add.type = jvm::Type::Double();
  add.bin_op = jvm::BinOp::kAdd;
  EXPECT_GT(model.InsnCost(exp_call), 10 * model.InsnCost(add));
}

TEST(JvmCostTest, ArrayAccessCostsMoreThanLocals) {
  jvm::CostModel model;
  jvm::Insn aload{};
  aload.op = jvm::Opcode::kArrayLoad;
  aload.type = jvm::Type::Float();
  jvm::Insn load{};
  load.op = jvm::Opcode::kLoad;
  load.type = jvm::Type::Float();
  EXPECT_GT(model.InsnCost(aload), model.InsnCost(load));
}

// --------------------------------------------- interpreter edge cases

TEST(InterpreterEdgeTest, VirtualDispatchReadsReceiverFields) {
  jvm::ClassPool pool;
  jvm::Klass& point = pool.Define("Point");
  point.AddField({"x", Type::Int()});
  {
    // int doubled() { return this.x * 2; }  (instance method)
    jvm::Assembler a;
    a.Load(Type::Class("Point"), 0).GetField("Point", "x");
    a.IConst(2).IMul().Ret(Type::Int());
    jvm::MethodSignature sig;
    sig.ret = Type::Int();
    point.AddMethod(
        jvm::MakeMethod("doubled", sig, /*is_static=*/false, 1, a.Finish()));
  }
  jvm::Klass& k = pool.Define("T");
  {
    jvm::Assembler a;
    a.Load(Type::Class("Point"), 0).InvokeVirtual("Point", "doubled");
    a.Ret(Type::Int());
    jvm::MethodSignature sig;
    sig.params = {Type::Class("Point")};
    sig.ret = Type::Int();
    k.AddMethod(jvm::MakeMethod("call", sig, true, 1, a.Finish()));
  }
  jvm::Heap heap;
  jvm::Ref p = heap.NewInstance(Type::Class("Point"), 1);
  heap.Get(p).slots[0] = jvm::Value::OfInt(21);
  jvm::Interpreter interp(pool, heap);
  EXPECT_EQ(interp.Invoke("T", "call", {jvm::Value::OfRef(p)}).ret.AsInt(),
            42);
}

TEST(InterpreterEdgeTest, HeapGuardsNullAndDangling) {
  jvm::Heap heap;
  EXPECT_THROW(heap.Get(jvm::kNullRef), InvalidArgument);
  EXPECT_THROW(heap.Get(999), InvalidArgument);
}

TEST(InterpreterEdgeTest, UnsignedShiftOfNegativeInt) {
  jvm::ClassPool pool;
  jvm::Assembler a;
  a.Load(Type::Int(), 0).IConst(28).Bin(Type::Int(), jvm::BinOp::kUShr);
  a.Ret(Type::Int());
  jvm::MethodSignature sig;
  sig.params = {Type::Int()};
  sig.ret = Type::Int();
  pool.Define("T").AddMethod(
      jvm::MakeMethod("ushr", sig, true, 1, a.Finish()));
  jvm::Heap heap;
  jvm::Interpreter interp(pool, heap);
  EXPECT_EQ(interp.Invoke("T", "ushr", {jvm::Value::OfInt(-1)}).ret.AsInt(),
            0xF);  // logical shift fills with zeros
}

}  // namespace
}  // namespace s2fa
