#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cache/eval_cache.h"
#include "resilience/journal.h"
#include "support/thread_pool.h"

namespace s2fa::cache {
namespace {

using merlin::DesignConfig;
using tuner::EvalOutcome;

// A distinct config per index (the cache only looks at the key string).
DesignConfig MakeConfig(int i) {
  DesignConfig config;
  config.loops[0].tile = 1;
  config.loops[0].parallel = 1 << (i % 5);
  config.buffer_bits["in"] = 32 << (i % 3);
  return config;
}

EvalOutcome Outcome(double cost, double minutes = 5.0) {
  EvalOutcome out;
  out.feasible = true;
  out.cost = cost;
  out.eval_minutes = minutes;
  return out;
}

// ---------------------------------------------------------- spec parsing

TEST(CacheSpecTest, ParsesOnOffAndCapacity) {
  auto on = ParseCacheSpec("on");
  ASSERT_TRUE(on.has_value());
  EXPECT_TRUE(on->enabled);
  EXPECT_EQ(on->capacity, 0u);

  auto one = ParseCacheSpec("1");
  ASSERT_TRUE(one.has_value());
  EXPECT_TRUE(one->enabled);

  auto off = ParseCacheSpec("off");
  ASSERT_TRUE(off.has_value());
  EXPECT_FALSE(off->enabled);

  auto zero = ParseCacheSpec("0");
  ASSERT_TRUE(zero.has_value());
  EXPECT_FALSE(zero->enabled);

  auto bounded = ParseCacheSpec("64");
  ASSERT_TRUE(bounded.has_value());
  EXPECT_TRUE(bounded->enabled);
  EXPECT_EQ(bounded->capacity, 64u);
}

TEST(CacheSpecTest, RejectsGarbage) {
  EXPECT_FALSE(ParseCacheSpec("").has_value());
  EXPECT_FALSE(ParseCacheSpec("bogus").has_value());
  EXPECT_FALSE(ParseCacheSpec("-3").has_value());
  EXPECT_FALSE(ParseCacheSpec("12abc").has_value());
}

// ------------------------------------------------------------ basic API

TEST(EvalCacheTest, MissThenHitReplaysStoredOutcome) {
  EvalCache cache;
  int calls = 0;
  auto compute = [&] {
    ++calls;
    return Outcome(42.0, 7.5);
  };

  EvalOutcome first = cache.GetOrCompute("k", compute);
  EvalOutcome second = cache.GetOrCompute("k", compute);

  EXPECT_EQ(calls, 1);
  EXPECT_EQ(first.cost, 42.0);
  EXPECT_EQ(second.cost, 42.0);
  // The hit replays the charged synthesis time, so the simulated clock is
  // bit-identical with the cache on or off.
  EXPECT_EQ(second.eval_minutes, 7.5);

  EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inflight_joins, 0u);
  EXPECT_EQ(stats.minutes_saved, 7.5);
  EXPECT_DOUBLE_EQ(stats.DuplicateRate(), 0.5);
}

TEST(EvalCacheTest, FindAndInsert) {
  EvalCache cache;
  EXPECT_FALSE(cache.Find("k").has_value());
  cache.Insert("k", Outcome(9.0));
  auto found = cache.Find("k");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->cost, 9.0);
  EXPECT_EQ(cache.size(), 1u);
  // Find is a diagnostic peek: no lookups/hits counted.
  EXPECT_EQ(cache.stats().lookups, 0u);
}

TEST(EvalCacheTest, DisabledCacheIsPassThrough) {
  EvalCacheOptions options;
  options.enabled = false;
  EvalCache cache(options);
  int calls = 0;
  tuner::EvalFn wrapped = cache.Wrap([&](const DesignConfig&) {
    ++calls;
    return Outcome(1.0);
  });
  wrapped(MakeConfig(0));
  wrapped(MakeConfig(0));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.stats().lookups, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EvalCacheTest, WrapKeysOnCanonicalConfigString) {
  EvalCache cache;
  int calls = 0;
  tuner::EvalFn wrapped = cache.Wrap([&](const DesignConfig&) {
    ++calls;
    return Outcome(static_cast<double>(calls));
  });

  EvalOutcome a = wrapped(MakeConfig(0));
  EvalOutcome b = wrapped(MakeConfig(0));  // same canonical string
  EvalOutcome c = wrapped(MakeConfig(1));  // different point

  EXPECT_EQ(calls, 2);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_NE(a.cost, c.cost);
}

// ------------------------------------------------------------------ LRU

TEST(EvalCacheTest, LruEvictionRespectsCapacityAndRecency) {
  EvalCacheOptions options;
  options.capacity = 2;
  EvalCache cache(options);
  auto compute_for = [](double cost) { return [cost] { return Outcome(cost); }; };

  cache.GetOrCompute("a", compute_for(1));
  cache.GetOrCompute("b", compute_for(2));
  cache.GetOrCompute("a", compute_for(1));  // touch: "b" is now LRU
  cache.GetOrCompute("c", compute_for(3));  // evicts "b"

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Find("a").has_value());
  EXPECT_FALSE(cache.Find("b").has_value());
  EXPECT_TRUE(cache.Find("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The evicted key is recomputed on the next request.
  int recomputed = 0;
  cache.GetOrCompute("b", [&] {
    ++recomputed;
    return Outcome(2);
  });
  EXPECT_EQ(recomputed, 1);
}

// --------------------------------------------------------- single-flight

TEST(EvalCacheTest, SingleFlightDeduplicatesConcurrentRequests) {
  EvalCache cache;
  std::atomic<int> computes{0};
  constexpr int kThreads = 16;

  ThreadPool pool(kThreads);
  std::vector<std::future<EvalOutcome>> futures;
  futures.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    futures.push_back(pool.Submit([&] {
      return cache.GetOrCompute("hot", [&] {
        // Slow enough that the other requesters pile up behind the leader.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ++computes;
        return Outcome(17.0);
      });
    }));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().cost, 17.0);

  EXPECT_EQ(computes.load(), 1);
  EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, static_cast<std::size_t>(kThreads));
  EXPECT_EQ(stats.misses, 1u);
  // Everyone else either joined the flight or (if it finished first) hit
  // the completed entry; either way nobody re-paid the evaluation.
  EXPECT_EQ(stats.hits + stats.inflight_joins,
            static_cast<std::size_t>(kThreads) - 1u);
}

TEST(EvalCacheTest, FailedLeaderLetsWaitersRetry) {
  EvalCache cache;
  std::atomic<int> attempts{0};
  constexpr int kThreads = 8;

  ThreadPool pool(kThreads);
  std::vector<std::future<double>> futures;
  futures.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    futures.push_back(pool.Submit([&]() -> double {
      try {
        return cache
            .GetOrCompute("flaky",
                          [&] {
                            int n = ++attempts;
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(10));
                            if (n == 1) throw std::runtime_error("boom");
                            return Outcome(5.0);
                          })
            .cost;
      } catch (const std::runtime_error&) {
        return -1.0;  // the leader that drew the failure
      }
    }));
  }
  int failures = 0;
  for (auto& f : futures) {
    double cost = f.get();
    if (cost < 0) {
      ++failures;
    } else {
      EXPECT_EQ(cost, 5.0);
    }
  }
  // Exactly one caller (the first leader) observes the exception; every
  // waiter retries and one of them becomes the new leader.
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(attempts.load(), 2);
  ASSERT_TRUE(cache.Find("flaky").has_value());
}

// Hammer many distinct keys from many threads with a bounded capacity —
// primarily an ASan/TSan target via the sanitized duplicate.
TEST(EvalCacheTest, ConcurrentMixedWorkloadStaysConsistent) {
  EvalCacheOptions options;
  options.capacity = 8;
  EvalCache cache(options);
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  constexpr int kIters = 200;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &computes, t] {
      for (int i = 0; i < kIters; ++i) {
        const int key = (t + i) % 24;
        EvalOutcome out = cache.GetOrCompute(
            "k" + std::to_string(key), [&computes, key] {
              ++computes;
              return Outcome(static_cast<double>(key));
            });
        ASSERT_EQ(out.cost, static_cast<double>(key));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_LE(cache.size(), 8u);
  EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_EQ(stats.misses, static_cast<std::size_t>(computes.load()));
  EXPECT_EQ(stats.hits + stats.inflight_joins + stats.misses, stats.lookups);
}

// ----------------------------------------------- journal/cache layering

TEST(EvalCacheTest, JournalHitNeverTouchesTheCache) {
  const std::string path =
      ::testing::TempDir() + "/cache_precedence_journal." +
      std::to_string(::getpid()) + ".jsonl";
  std::remove(path.c_str());

  int raw_calls = 0;
  tuner::EvalFn raw = [&](const DesignConfig&) {
    ++raw_calls;
    return Outcome(3.0);
  };

  {
    // First run: journal miss -> cache miss -> raw evaluator; the journal
    // records what the cache returned.
    resilience::EvalJournal journal;
    journal.Open(path);
    EvalCache cache;
    tuner::EvalFn fn = journal.Wrap("p0", cache.Wrap(raw));
    fn(MakeConfig(0));
    EXPECT_EQ(raw_calls, 1);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(journal.entries(), 1u);
  }
  {
    // Resumed run: the journal answers first; the fresh cache is never
    // consulted (journal -> cache -> evaluator layering).
    resilience::EvalJournal journal;
    journal.Open(path);
    EXPECT_EQ(journal.resumed(), 1u);
    EvalCache cache;
    tuner::EvalFn fn = journal.Wrap("p0", cache.Wrap(raw));
    EvalOutcome out = fn(MakeConfig(0));
    EXPECT_EQ(out.cost, 3.0);
    EXPECT_EQ(raw_calls, 1);
    EXPECT_EQ(journal.hits(), 1u);
    EXPECT_EQ(cache.stats().lookups, 0u);
    // A key the journal does not know falls through to the cache.
    fn(MakeConfig(1));
    EXPECT_EQ(raw_calls, 2);
    EXPECT_EQ(cache.stats().misses, 1u);
  }
  std::remove(path.c_str());
}

TEST(EvalCacheTest, StatsMergeAccumulates) {
  EvalCacheStats a;
  a.lookups = 10;
  a.hits = 4;
  a.misses = 6;
  a.minutes_saved = 20;
  EvalCacheStats b;
  b.lookups = 5;
  b.hits = 1;
  b.misses = 4;
  b.inflight_joins = 2;
  b.evictions = 3;
  b.minutes_saved = 5;
  a.Merge(b);
  EXPECT_EQ(a.lookups, 15u);
  EXPECT_EQ(a.hits, 5u);
  EXPECT_EQ(a.misses, 10u);
  EXPECT_EQ(a.inflight_joins, 2u);
  EXPECT_EQ(a.evictions, 3u);
  EXPECT_EQ(a.minutes_saved, 25.0);
}

}  // namespace
}  // namespace s2fa::cache
