#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "support/error.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace s2fa {
namespace {

// ---------------------------------------------------------------- error

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(S2FA_REQUIRE(false, "boom " << 42), InvalidArgument);
}

TEST(ErrorTest, CheckThrowsInternalError) {
  EXPECT_THROW(S2FA_CHECK(false, "bug"), InternalError);
}

TEST(ErrorTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(S2FA_REQUIRE(true, "fine"));
  EXPECT_NO_THROW(S2FA_CHECK(1 + 1 == 2, "fine"));
}

TEST(ErrorTest, MessageContainsLocationAndText) {
  try {
    S2FA_REQUIRE(false, "detail " << 7);
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("detail 7"), std::string::npos);
    EXPECT_NE(what.find("support_test.cc"), std::string::npos);
  }
}

// ------------------------------------------------------------------ rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.NextBounded(0), InvalidArgument);
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsAboutHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(42);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(77);
  Rng child = a.Fork();
  // The fork must not replay the parent stream.
  Rng b(77);
  b.Next();  // advance past the Fork() draw
  EXPECT_NE(child.Next(), b.Next());
}

// -------------------------------------------------------------- strings

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimRemovesWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcd", 2), "abcd");
}

TEST(StringsTest, Formatters) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.256, 1), "25.6%");
  EXPECT_EQ(FormatSpeedup(49.93, 1), "49.9x");
}

TEST(StringsTest, JoinStringsAndNumbers) {
  std::vector<std::string> words{"a", "b", "c"};
  EXPECT_EQ(Join(words, ", "), "a, b, c");
  std::vector<int> nums{1, 2, 3};
  EXPECT_EQ(Join(nums, "-"), "1-2-3");
  EXPECT_EQ(Join(std::vector<int>{}, ","), "");
}

TEST(StringsTest, IndentAllLines) {
  EXPECT_EQ(Indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(Indent("a\n\nb", 2), "  a\n\n  b");  // blank lines stay blank
}

// ---------------------------------------------------------------- table

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"Kernel", "BRAM"});
  t.AddRow({"KMeans", "73%"});
  t.AddRow({"S-W", "33%"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| Kernel | BRAM |"), std::string::npos);
  EXPECT_NE(out.find("| KMeans | 73%  |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), InvalidArgument);
}

// ----------------------------------------------------------- threadpool

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  // Two tasks rendezvous: each waits (with timeout) until both are running.
  // Only a pool that executes them concurrently can satisfy both.
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  std::atomic<int> successes{0};
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(m);
    ++arrived;
    cv.notify_all();
    if (cv.wait_for(lock, std::chrono::seconds(5),
                    [&] { return arrived >= 2; })) {
      successes.fetch_add(1);
    }
  };
  pool.Submit(rendezvous);
  pool.Submit(rendezvous);
  pool.Wait();
  EXPECT_EQ(successes.load(), 2);
}

TEST(LoggingTest, ParseLogLevelAcceptsDigitsAndNames) {
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("4"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("WARN"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
}

TEST(LoggingTest, ParseLogLevelRejectsGarbage) {
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("5"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("-1"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("1 "), std::nullopt);
  EXPECT_EQ(ParseLogLevel("debugg"), std::nullopt);
}

TEST(LoggingTest, LogLevelNameRoundTrips) {
  for (LogLevel level : {LogLevel::kOff, LogLevel::kError, LogLevel::kWarn,
                         LogLevel::kInfo, LogLevel::kDebug}) {
    EXPECT_EQ(ParseLogLevel(LogLevelName(level)), level);
  }
}

TEST(LoggingTest, MonotonicClockAdvancesAndThreadIdsAreDense) {
  const std::uint64_t a = MonotonicMicros();
  const std::uint64_t b = MonotonicMicros();
  EXPECT_GE(b, a);
  EXPECT_GE(MonotonicMillis(), 0.0);

  const int self = CurrentThreadId();
  EXPECT_GE(self, 1);
  EXPECT_EQ(CurrentThreadId(), self);  // stable per thread
  int other = 0;
  {
    ThreadPool pool(1);
    pool.Submit([&other] { other = CurrentThreadId(); }).wait();
  }
  EXPECT_NE(other, self);
}

}  // namespace
}  // namespace s2fa
