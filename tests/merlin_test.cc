#include <gtest/gtest.h>

#include "kir/analysis.h"
#include "kir/eval.h"
#include "kir/printer.h"
#include "merlin/transform.h"
#include "support/rng.h"

namespace s2fa::merlin {
namespace {

using jvm::Value;
using kir::BinaryOp;
using kir::Buffer;
using kir::BufferKind;
using kir::Expr;
using kir::Stmt;
using kir::Type;

// out[i] = in[i] * 3 for i in [0, 24): a loop whose trip has several
// divisors for tiling tests.
kir::Kernel MakeScaleKernel() {
  kir::Kernel k;
  k.name = "scale24";
  k.buffers.push_back({"in", Type::Float(), 24, BufferKind::kInput, "in._1"});
  k.buffers.push_back(
      {"out", Type::Float(), 24, BufferKind::kOutput, "ret._1"});
  auto i = Expr::Var("i", Type::Int());
  auto body = Stmt::Assign(
      Expr::ArrayRef("out", Type::Float(), i),
      Expr::Binary(BinaryOp::kMul, Expr::ArrayRef("in", Type::Float(), i),
                   Expr::FloatLit(3.0f)));
  k.body = Stmt::Block({Stmt::For(0, "i", 24, Stmt::Block({body}))});
  k.task_loop_id = 0;
  return k;
}

// Nested kernel: for i in 8 { acc = 0; for j in 16: acc += a[i*16+j]; out[i] = acc }
kir::Kernel MakeSumKernel() {
  kir::Kernel k;
  k.name = "rowsum";
  k.buffers.push_back({"a", Type::Float(), 128, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Float(), 8, BufferKind::kOutput, ""});
  auto i = Expr::Var("i", Type::Int());
  auto j = Expr::Var("j", Type::Int());
  auto acc = Expr::Var("acc", Type::Float());
  auto elem = Expr::ArrayRef(
      "a", Type::Float(),
      Expr::Binary(BinaryOp::kAdd,
                   Expr::Binary(BinaryOp::kMul, i, Expr::IntLit(16)), j));
  auto inner = Stmt::For(
      1, "j", 16,
      Stmt::Block({Stmt::Assign(acc, Expr::Binary(BinaryOp::kAdd, acc, elem))}));
  inner->set_is_reduction(true);
  auto outer = Stmt::For(
      0, "i", 8,
      Stmt::Block({Stmt::Decl("acc", Type::Float(), Expr::FloatLit(0.0f)),
                   inner,
                   Stmt::Assign(Expr::ArrayRef("out", Type::Float(), i), acc)}));
  k.body = Stmt::Block({outer});
  k.task_loop_id = 0;
  return k;
}

kir::BufferMap RandomInputs(const kir::Kernel& k, std::uint64_t seed) {
  Rng rng(seed);
  kir::BufferMap buffers;
  for (const Buffer* b : k.InputBuffers()) {
    for (std::int64_t n = 0; n < b->length; ++n) {
      buffers[b->name].push_back(
          Value::OfFloat(static_cast<float>(rng.NextDouble(-4, 4))));
    }
  }
  return buffers;
}

// Runs both kernels on the same inputs and compares all output buffers.
void ExpectEquivalent(const kir::Kernel& a, const kir::Kernel& b,
                      std::uint64_t seed) {
  kir::BufferMap ba = RandomInputs(a, seed);
  kir::BufferMap bb = ba;
  kir::Evaluator(a).Run({}, ba);
  kir::Evaluator(b).Run({}, bb);
  for (const Buffer* buf : a.OutputBuffers()) {
    ASSERT_EQ(ba[buf->name].size(), bb[buf->name].size());
    for (std::size_t n = 0; n < ba[buf->name].size(); ++n) {
      EXPECT_EQ(ba[buf->name][n].AsFloat(), bb[buf->name][n].AsFloat())
          << buf->name << "[" << n << "]";
    }
  }
}

// ------------------------------------------------------------ validation

TEST(MerlinValidateTest, AcceptsLegalConfig) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.loops[0] = {4, 2, PipelineMode::kOn};
  cfg.buffer_bits["in"] = 128;
  EXPECT_TRUE(ValidateConfig(k, cfg).empty());
}

TEST(MerlinValidateTest, RejectsUnknownLoop) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.loops[42] = {};
  EXPECT_FALSE(ValidateConfig(k, cfg).empty());
}

TEST(MerlinValidateTest, RejectsNonDividingTile) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.loops[0] = {5, 1, PipelineMode::kOff};  // 5 does not divide 24
  EXPECT_FALSE(ValidateConfig(k, cfg).empty());
}

TEST(MerlinValidateTest, RejectsOversizedParallel) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.loops[0] = {1, 25, PipelineMode::kOff};
  EXPECT_FALSE(ValidateConfig(k, cfg).empty());
}

TEST(MerlinValidateTest, RejectsParallelBeyondTile) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.loops[0] = {4, 8, PipelineMode::kOff};
  EXPECT_FALSE(ValidateConfig(k, cfg).empty());
}

TEST(MerlinValidateTest, RejectsBadBitwidths) {
  kir::Kernel k = MakeScaleKernel();
  for (int bits : {24, 1024, 8}) {  // not 2^n / too big / below element
    DesignConfig cfg;
    cfg.buffer_bits["in"] = bits;
    EXPECT_FALSE(ValidateConfig(k, cfg).empty()) << bits;
  }
}

TEST(MerlinValidateTest, RejectsBitwidthOnLocalBuffer) {
  kir::Kernel k = MakeScaleKernel();
  k.buffers.push_back({"scratch", Type::Int(), 8, BufferKind::kLocal, ""});
  DesignConfig cfg;
  cfg.buffer_bits["scratch"] = 64;
  EXPECT_FALSE(ValidateConfig(k, cfg).empty());
}

TEST(MerlinValidateTest, ApplyThrowsOnIllegalConfig) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.loops[0] = {5, 1, PipelineMode::kOff};
  EXPECT_THROW(ApplyDesign(k, cfg), InvalidArgument);
}

// ------------------------------------------------------------ transforms

TEST(MerlinTransformTest, TilingSplitsLoop) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.loops[0] = {4, 1, PipelineMode::kOff};
  TransformResult r = ApplyDesign(k, cfg);
  auto loops = r.kernel.Loops();
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0]->loop_id(), 0);
  EXPECT_EQ(loops[0]->trip_count(), 6);   // 24/4 tiles
  EXPECT_EQ(loops[1]->trip_count(), 4);   // point loop
  EXPECT_NE(loops[1]->loop_id(), 0);
}

TEST(MerlinTransformTest, TilingPreservesSemantics) {
  kir::Kernel k = MakeScaleKernel();
  for (int tile : {2, 3, 4, 6, 8, 12}) {
    DesignConfig cfg;
    cfg.loops[0] = {tile, 1, PipelineMode::kOff};
    TransformResult r = ApplyDesign(k, cfg);
    ExpectEquivalent(k, r.kernel, 1234 + static_cast<std::uint64_t>(tile));
  }
}

TEST(MerlinTransformTest, TilingNestedKernelPreservesSemantics) {
  kir::Kernel k = MakeSumKernel();
  DesignConfig cfg;
  cfg.loops[0] = {4, 2, PipelineMode::kOn};
  cfg.loops[1] = {4, 4, PipelineMode::kOff};
  TransformResult r = ApplyDesign(k, cfg);
  ExpectEquivalent(k, r.kernel, 99);
}

TEST(MerlinTransformTest, ParallelAnnotationLandsOnPointLoop) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.loops[0] = {4, 2, PipelineMode::kOn};
  TransformResult r = ApplyDesign(k, cfg);
  auto loops = r.kernel.Loops();
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(ParallelFactorOf(*loops[0]), 1);
  EXPECT_EQ(ParallelFactorOf(*loops[1]), 2);
  EXPECT_EQ(PipelineModeOf(*loops[0]), PipelineMode::kOn);
  EXPECT_EQ(PipelineModeOf(*loops[1]), PipelineMode::kOff);
}

TEST(MerlinTransformTest, ReductionGetsTreeAnnotation) {
  kir::Kernel k = MakeSumKernel();
  DesignConfig cfg;
  cfg.loops[1] = {1, 8, PipelineMode::kOff};
  TransformResult r = ApplyDesign(k, cfg);
  const Stmt* inner = kir::FindLoop(r.kernel.body, 1);
  ASSERT_NE(inner, nullptr);
  EXPECT_TRUE(HasTreeReduction(*inner));
}

TEST(MerlinTransformTest, NonReductionGetsNoTree) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.loops[0] = {1, 8, PipelineMode::kOff};
  TransformResult r = ApplyDesign(k, cfg);
  EXPECT_FALSE(HasTreeReduction(*kir::FindLoop(r.kernel.body, 0)));
}

TEST(MerlinTransformTest, FlattenFullyUnrollsSubLoops) {
  kir::Kernel k = MakeSumKernel();
  DesignConfig cfg;
  cfg.loops[0] = {1, 1, PipelineMode::kFlatten};
  cfg.loops[1] = {1, 2, PipelineMode::kOn};  // gets invalidated
  TransformResult r = ApplyDesign(k, cfg);
  const Stmt* inner = kir::FindLoop(r.kernel.body, 1);
  EXPECT_EQ(ParallelFactorOf(*inner), 16);  // full trip count
  EXPECT_EQ(PipelineModeOf(*inner), PipelineMode::kOff);
  EXPECT_FALSE(r.notes.empty());  // the override is reported
}

TEST(MerlinTransformTest, BitwidthRecordedOnBuffers) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.buffer_bits["in"] = 256;
  TransformResult r = ApplyDesign(k, cfg);
  EXPECT_EQ(r.kernel.FindBuffer("in")->interface_bits, 256);
  // Unconfigured interface buffers default to the element width.
  EXPECT_EQ(r.kernel.FindBuffer("out")->interface_bits, 32);
}

TEST(MerlinTransformTest, OriginalKernelUntouched) {
  kir::Kernel k = MakeScaleKernel();
  DesignConfig cfg;
  cfg.loops[0] = {4, 2, PipelineMode::kOn};
  cfg.buffer_bits["in"] = 256;
  ApplyDesign(k, cfg);
  EXPECT_EQ(k.Loops().size(), 1u);
  EXPECT_EQ(k.FindBuffer("in")->interface_bits, 0);
  EXPECT_TRUE(k.Loops()[0]->annotations().empty());
}

TEST(MerlinTransformTest, PragmasAppearInEmittedC) {
  kir::Kernel k = MakeSumKernel();
  DesignConfig cfg;
  cfg.loops[1] = {1, 4, PipelineMode::kOn};
  TransformResult r = ApplyDesign(k, cfg);
  std::string c = kir::EmitC(r.kernel);
  EXPECT_NE(c.find("#pragma ACCEL PARALLEL factor=4"), std::string::npos)
      << c;
  EXPECT_NE(c.find("#pragma ACCEL PIPELINE"), std::string::npos) << c;
}

// Property sweep: random legal configs preserve semantics on the nested
// kernel.
class RandomConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomConfigSweep, TransformedKernelEquivalent) {
  kir::Kernel k = MakeSumKernel();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  DesignConfig cfg;
  auto pick_loop_cfg = [&](std::int64_t trip) {
    LoopConfig lc;
    std::vector<std::int64_t> tiles{1};
    for (std::int64_t t = 2; t < trip; ++t) {
      if (trip % t == 0) tiles.push_back(t);
    }
    lc.tile = tiles[rng.NextIndex(tiles.size())];
    std::int64_t max_par = lc.tile > 1 ? lc.tile : trip;
    lc.parallel = static_cast<std::int64_t>(rng.NextInt(1, max_par));
    lc.pipeline = static_cast<PipelineMode>(rng.NextInt(0, 2));
    return lc;
  };
  cfg.loops[0] = pick_loop_cfg(8);
  cfg.loops[1] = pick_loop_cfg(16);
  int bits_choices[] = {32, 64, 128, 256, 512};
  cfg.buffer_bits["a"] = bits_choices[rng.NextIndex(5)];
  ASSERT_TRUE(ValidateConfig(k, cfg).empty()) << cfg.ToString();
  TransformResult r = ApplyDesign(k, cfg);
  ExpectEquivalent(k, r.kernel, 5000 + static_cast<std::uint64_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigSweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace s2fa::merlin
