#include <gtest/gtest.h>

#include "apps/app.h"
#include "s2fa/framework.h"

namespace s2fa {
namespace {

// End-to-end framework tests on a real app (SVM is small and fast).

FrameworkOptions FastOptions() {
  FrameworkOptions options;
  options.dse.time_limit_minutes = 90;
  options.dse.num_cores = 8;
  options.dse.seed = 5;
  options.dse.training_samples = 120;
  return options;
}

TEST(FrameworkTest, BuildAcceleratorProducesAllArtifacts) {
  apps::App app = apps::FindApp("SVM");
  Artifact artifact = BuildAccelerator(*app.pool, app.spec, FastOptions());

  // Front end.
  EXPECT_EQ(artifact.generated_kernel.name, "svm_kernel");
  EXPECT_NE(artifact.c_source.find("void svm_kernel"), std::string::npos);
  EXPECT_GT(artifact.space.num_factors(), 5u);

  // Exploration.
  EXPECT_TRUE(artifact.exploration.found_feasible);
  EXPECT_GT(artifact.exploration.evaluations, 10u);
  EXPECT_FALSE(artifact.exploration.partitions.empty());

  // Back end.
  EXPECT_TRUE(artifact.best_hls.feasible);
  EXPECT_GT(artifact.best_hls.freq_mhz, 60.0);
  EXPECT_NE(artifact.best_c_source.find("#pragma"), std::string::npos);

  // Integration glue.
  EXPECT_FALSE(artifact.plan.entries.empty());
  EXPECT_NE(artifact.scala_helper.find("Serde"), std::string::npos);
}

TEST(FrameworkTest, BestDesignNotWorseThanConservative) {
  apps::App app = apps::FindApp("SVM");
  Artifact tuned = BuildAccelerator(*app.pool, app.spec, FastOptions());
  Artifact conservative =
      BuildWithConfig(*app.pool, app.spec, merlin::DesignConfig{});
  EXPECT_LE(tuned.best_hls.exec_us, conservative.best_hls.exec_us);
}

TEST(FrameworkTest, EvaluatorTreatsIllegalConfigsAsInfeasible) {
  apps::App app = apps::FindApp("SVM");
  kir::Kernel kernel = b2c::CompileKernel(*app.pool, app.spec);
  tuner::EvalFn eval = MakeHlsEvaluator(kernel);
  merlin::DesignConfig illegal;
  illegal.loops[0] = {1, 9999, merlin::PipelineMode::kOff};  // par > trip
  tuner::EvalOutcome outcome = eval(illegal);
  EXPECT_FALSE(outcome.feasible);
  EXPECT_GT(outcome.eval_minutes, 0.0);
}

TEST(FrameworkTest, EvaluatorIsDeterministic) {
  apps::App app = apps::FindApp("SVM");
  kir::Kernel kernel = b2c::CompileKernel(*app.pool, app.spec);
  tuner::EvalFn eval = MakeHlsEvaluator(kernel);
  merlin::DesignConfig cfg;
  cfg.loops[1] = {1, 4, merlin::PipelineMode::kOn};
  tuner::EvalOutcome a = eval(cfg);
  tuner::EvalOutcome b = eval(cfg);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.eval_minutes, b.eval_minutes);
}

TEST(FrameworkTest, BuildWithInfeasibleConfigThrows) {
  apps::App app = apps::FindApp("LR");
  merlin::DesignConfig monster;
  // Fully unroll everything: blows the resource cap.
  monster.loops[2] = {1, 64, merlin::PipelineMode::kOn};
  monster.loops[3] = {1, 1024, merlin::PipelineMode::kOn};
  EXPECT_THROW(BuildWithConfig(*app.pool, app.spec, monster), Error);
}

TEST(FrameworkTest, GeneratedCMatchesPaperShape) {
  // The motivating example's shape (paper Code 3): flat pointers in, a
  // task loop, and per-field buffers for the tuple.
  apps::App app = apps::FindApp("S-W");
  Artifact artifact =
      BuildWithConfig(*app.pool, app.spec, merlin::DesignConfig{});
  const std::string& c = artifact.c_source;
  EXPECT_NE(c.find("char *in_1"), std::string::npos) << c;
  EXPECT_NE(c.find("char *in_2"), std::string::npos);
  EXPECT_NE(c.find("int *out_1"), std::string::npos);
  EXPECT_NE(c.find("for (int i = 0; i < 256; i++)"), std::string::npos);
}

}  // namespace
}  // namespace s2fa
