#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "dse/explorer.h"
#include "hls/estimator.h"
#include "merlin/transform.h"
#include "support/thread_pool.h"

namespace s2fa::dse {
namespace {

using kir::BinaryOp;
using kir::BufferKind;
using kir::Expr;
using kir::Stmt;
using kir::Type;
using tuner::DesignSpace;
using tuner::EvalOutcome;

// The same nested reduce kernel used across tuner/dse tests.
kir::Kernel NestedKernel() {
  kir::Kernel k;
  k.name = "nested";
  k.buffers.push_back({"in", Type::Float(), 4096, BufferKind::kInput, ""});
  k.buffers.push_back({"out", Type::Float(), 64, BufferKind::kOutput, ""});
  auto i = Expr::Var("i", Type::Int());
  auto j = Expr::Var("j", Type::Int());
  auto acc = Expr::Var("acc", Type::Float());
  auto inner = Stmt::For(
      1, "j", 64,
      Stmt::Block({Stmt::Assign(
          acc,
          Expr::Binary(
              BinaryOp::kAdd, acc,
              Expr::Binary(
                  BinaryOp::kMul,
                  Expr::ArrayRef(
                      "in", Type::Float(),
                      Expr::Binary(BinaryOp::kAdd,
                                   Expr::Binary(BinaryOp::kMul, i,
                                                Expr::IntLit(64)),
                                   j)),
                  Expr::FloatLit(1.5f))))}));
  inner->set_is_reduction(true);
  auto outer = Stmt::For(
      0, "i", 64,
      Stmt::Block({Stmt::Decl("acc", Type::Float(), Expr::FloatLit(0.0f)),
                   inner,
                   Stmt::Assign(Expr::ArrayRef("out", Type::Float(), i),
                                acc)}));
  outer->set_inserted_by_template(true);
  k.body = Stmt::Block({outer});
  k.task_loop_id = 0;
  return k;
}

tuner::EvalFn HlsEval(const kir::Kernel& kernel) {
  return [kernel](const merlin::DesignConfig& cfg) -> EvalOutcome {
    EvalOutcome out;
    try {
      merlin::TransformResult t = merlin::ApplyDesign(kernel, cfg);
      hls::HlsResult r = hls::EstimateHls(t.kernel);
      out.feasible = r.feasible;
      out.cost = r.exec_us;
      out.eval_minutes = r.eval_minutes;
    } catch (const InvalidArgument&) {
      out.feasible = false;
      out.cost = tuner::kInfeasibleCost;
      out.eval_minutes = 3.0;
    }
    return out;
  };
}

merlin::DesignConfig ConfigWithParallel(std::int64_t parallel) {
  merlin::DesignConfig cfg;
  cfg.loops[0].parallel = parallel;
  return cfg;
}

// --------------------------------------------------------------- span clip

TEST(ClipTest, ReportsBestPairFoundWithinSpan) {
  // Regression for the clipped-cost/config mismatch: the clip used to pair
  // the in-span best *cost* with the run's *final* config. The pair must
  // come from the same improvement record.
  tuner::TuneResult r;
  merlin::DesignConfig early = ConfigWithParallel(4);
  merlin::DesignConfig late = ConfigWithParallel(8);
  r.improvements = {{10.0, 5.0, early}, {80.0, 3.0, late}};
  r.eval_times_minutes = {2.0, 10.0, 40.0, 80.0, 95.0};
  r.trace = {{10.0, 5.0}, {80.0, 3.0}};
  r.found_feasible = true;
  r.best_cost = 3.0;
  r.best_config = late;

  SpanReport mid = ClipTuneResultToSpan(r, 50.0);
  EXPECT_TRUE(mid.found);
  EXPECT_DOUBLE_EQ(mid.best_cost, 5.0);
  EXPECT_TRUE(mid.best_config == early);  // NOT the final config
  ASSERT_EQ(mid.trace.size(), 1u);
  EXPECT_DOUBLE_EQ(mid.trace[0].time_minutes, 10.0);

  SpanReport full = ClipTuneResultToSpan(r, 240.0);
  EXPECT_DOUBLE_EQ(full.best_cost, 3.0);
  EXPECT_TRUE(full.best_config == late);
  EXPECT_EQ(full.evaluations, 5u);
}

TEST(ClipTest, CountsCommittedEvaluationsNotTimeProportion) {
  // Regression for the clipped evaluation estimate: the count must be the
  // number of commits inside the span, not ceil(span-proportional share).
  tuner::TuneResult r;
  r.eval_times_minutes = {2.0, 10.0, 40.0, 80.0, 95.0};
  r.elapsed_minutes = 95.0;
  // Span 50 holds 3 of 5 commits; the proportional estimate would claim
  // ceil(5 * 50 / 95) = 3 here but diverges whenever commits cluster:
  SpanReport report = ClipTuneResultToSpan(r, 50.0);
  EXPECT_EQ(report.evaluations, 3u);
  EXPECT_FALSE(report.found);
  EXPECT_EQ(report.best_cost, tuner::kInfeasibleCost);

  // Clustered commits: 4 of 5 land in the first tenth of the run. A
  // time-proportional estimate for span 10 would say ceil(5*10/100) = 1.
  tuner::TuneResult clustered;
  clustered.eval_times_minutes = {1.0, 2.0, 3.0, 4.0, 100.0};
  clustered.elapsed_minutes = 100.0;
  EXPECT_EQ(ClipTuneResultToSpan(clustered, 10.0).evaluations, 4u);
}

TEST(ClipTest, ScansAllCommitTimesBecauseBatchesAreNotMonotone) {
  // Commit times within a parallel batch are not monotone: a later-index
  // commit may carry an earlier time. The count must scan every entry
  // rather than stop at the first one past the span.
  tuner::TuneResult r;
  r.eval_times_minutes = {2.0, 60.0, 40.0, 80.0};
  EXPECT_EQ(ClipTuneResultToSpan(r, 50.0).evaluations, 2u);
}

// ------------------------------------------------------------- rate math

TEST(SchedulerMathTest, GrantImprovementRate) {
  // First feasible point: large finite priority.
  EXPECT_DOUBLE_EQ(
      GrantImprovementRate(tuner::kInfeasibleCost, 5.0, 10.0), 1e9);
  // Plain refinement: log-cost delta per minute.
  EXPECT_NEAR(GrantImprovementRate(10.0, 5.0, 2.0), std::log(2.0) / 2.0,
              1e-12);
  // No improvement (equal or worse, or still infeasible): zero.
  EXPECT_DOUBLE_EQ(GrantImprovementRate(5.0, 5.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(GrantImprovementRate(5.0, 7.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(GrantImprovementRate(tuner::kInfeasibleCost,
                                        tuner::kInfeasibleCost, 10.0),
                   0.0);
}

TEST(SchedulerMathTest, MainImprovementRateUsesBackHalf) {
  tuner::TuneResult r;
  r.elapsed_minutes = 100.0;
  merlin::DesignConfig cfg = ConfigWithParallel(2);
  r.improvements = {{10.0, 100.0, cfg}, {80.0, 50.0, cfg}};
  // Best at the midpoint is 100, best at the end 50, over 50 minutes.
  EXPECT_NEAR(MainImprovementRate(r), std::log(2.0) / 50.0, 1e-12);

  tuner::TuneResult flat;
  flat.elapsed_minutes = 100.0;
  flat.improvements = {{10.0, 100.0, cfg}};  // nothing in the back half
  EXPECT_DOUBLE_EQ(MainImprovementRate(flat), 0.0);

  tuner::TuneResult empty;
  EXPECT_DOUBLE_EQ(MainImprovementRate(empty), 0.0);
}

TEST(SchedulerMathTest, MapSessionTimeToGlobal) {
  std::vector<ReclaimGrant> grants(2);
  grants[0].start_minutes = 100.0;
  grants[0].session_start_minutes = 0.0;
  grants[0].used_minutes = 20.0;
  grants[1].start_minutes = 140.0;
  grants[1].session_start_minutes = 20.0;
  grants[1].used_minutes = 10.0;

  EXPECT_EQ(MapSessionTimeToGlobal(grants, 10.0), 110.0);
  EXPECT_EQ(MapSessionTimeToGlobal(grants, 20.0), 120.0);  // inclusive end
  EXPECT_EQ(MapSessionTimeToGlobal(grants, 25.0), 145.0);
  // Window starts are exclusive (a commit at the session clock's grant
  // boundary belongs to the previous grant) and times past the last grant
  // have no global image.
  EXPECT_FALSE(MapSessionTimeToGlobal(grants, 0.0).has_value());
  EXPECT_FALSE(MapSessionTimeToGlobal(grants, 35.0).has_value());
}

// ------------------------------------------------------- budget reclaim

TEST(SchedulerTest, ReclaimGrantsOnlyTouchedEarlyCores) {
  DesignSpace space = tuner::BuildDesignSpace(NestedKernel());
  auto eval = [](const merlin::DesignConfig&) -> EvalOutcome {
    return {true, 100.0, 10.0};
  };
  tuner::TuneOptions topt;
  topt.time_limit_minutes = 100;
  topt.parallel = 4;
  topt.seed = 5;
  tuner::TuneSession session(space, eval, topt);

  std::vector<ReclaimJob> jobs(1);
  jobs[0].partition = 0;
  jobs[0].session = &session;
  jobs[0].baseline_best = tuner::kInfeasibleCost;

  // Core 0 freed at minute 40; core 1 never hosted work; core 2 ran to
  // the limit. Only core 0's tail (60 min) is reclaimable budget.
  std::vector<double> cores{40.0, 0.0, 100.0};
  SchedulerOptions sopt;
  sopt.slice_minutes = 20;
  ThreadPool pool(2);
  ScheduleResult r = RunBudgetReclaim(std::move(jobs), cores, 100.0, sopt,
                                      pool);

  EXPECT_DOUBLE_EQ(r.stats.reclaimed_minutes, 60.0);
  ASSERT_EQ(r.grants.size(), 3u);
  EXPECT_EQ(r.stats.grants, 3u);
  double expected_start = 40.0;
  for (const ReclaimGrant& g : r.grants) {
    EXPECT_EQ(g.core, 0);  // never the untouched or the exhausted core
    EXPECT_DOUBLE_EQ(g.start_minutes, expected_start);
    EXPECT_DOUBLE_EQ(g.used_minutes, 20.0);
    EXPECT_TRUE(g.preempted);
    expected_start += 20.0;
  }
  EXPECT_DOUBLE_EQ(r.stats.regranted_minutes, 60.0);
  EXPECT_DOUBLE_EQ(r.stats.exploration_end_minutes, 100.0);
  EXPECT_EQ(r.stats.preemptions, 3u);
  EXPECT_DOUBLE_EQ(session.clock_minutes(), 60.0);
}

TEST(SchedulerTest, NoUsableCoresMeansNoGrants) {
  DesignSpace space = tuner::BuildDesignSpace(NestedKernel());
  auto eval = [](const merlin::DesignConfig&) -> EvalOutcome {
    return {true, 100.0, 10.0};
  };
  tuner::TuneOptions topt;
  topt.time_limit_minutes = 100;
  tuner::TuneSession session(space, eval, topt);
  std::vector<ReclaimJob> jobs(1);
  jobs[0].session = &session;

  // Every core either untouched or exhausted: the ledger stays empty.
  ThreadPool pool(2);
  ScheduleResult r = RunBudgetReclaim(std::move(jobs), {0.0, 100.0, 100.0},
                                      100.0, SchedulerOptions{}, pool);
  EXPECT_TRUE(r.grants.empty());
  EXPECT_DOUBLE_EQ(r.stats.reclaimed_minutes, 0.0);
  EXPECT_DOUBLE_EQ(session.clock_minutes(), 0.0);
}

// --------------------------------------------------------- explorer e2e

ExplorerOptions BaseOptions(SchedulerKind sched, StopKind stop) {
  ExplorerOptions options;
  options.time_limit_minutes = 240;
  options.num_cores = 8;
  options.seed = 7;
  options.scheduler = sched;
  options.stop = stop;
  return options;
}

void ExpectSameTrace(const DseResult& a, const DseResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].time_minutes, b.trace[i].time_minutes);
    EXPECT_EQ(a.trace[i].best_cost, b.trace[i].best_cost);
  }
}

TEST(SchedulerTest, AdaptiveMatchesFcfsWithoutEarlyStopping) {
  // With stopping disabled every main run exhausts its core, nothing is
  // reclaimed, and the adaptive schedule degenerates to exactly FCFS.
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  DseResult adaptive = RunS2faDse(
      space, k, eval, BaseOptions(SchedulerKind::kAdaptive,
                                  StopKind::kTimeOnly));
  DseResult fcfs = RunS2faDse(
      space, k, eval, BaseOptions(SchedulerKind::kFcfs,
                                  StopKind::kTimeOnly));
  EXPECT_EQ(adaptive.schedule.grants, 0u);
  EXPECT_DOUBLE_EQ(adaptive.schedule.reclaimed_minutes, 0.0);
  EXPECT_EQ(adaptive.best_cost, fcfs.best_cost);
  EXPECT_EQ(adaptive.evaluations, fcfs.evaluations);
  EXPECT_EQ(adaptive.elapsed_minutes, fcfs.elapsed_minutes);
  ExpectSameTrace(adaptive, fcfs);
}

TEST(SchedulerTest, AdaptiveNeverWorseAndReclaimsUnderEntropyStop) {
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  DseResult adaptive = RunS2faDse(
      space, k, eval, BaseOptions(SchedulerKind::kAdaptive,
                                  StopKind::kEntropy));
  DseResult fcfs = RunS2faDse(
      space, k, eval, BaseOptions(SchedulerKind::kFcfs, StopKind::kEntropy));

  // Entropy stops free budget on this kernel, and the ledger re-spends it.
  EXPECT_GT(adaptive.schedule.reclaimed_minutes, 0.0);
  EXPECT_GT(adaptive.schedule.grants, 0u);
  EXPECT_LE(adaptive.best_cost, fcfs.best_cost);

  // The FCFS phase itself is untouched by the reclaim pass.
  ASSERT_EQ(adaptive.partitions.size(), fcfs.partitions.size());
  for (std::size_t i = 0; i < adaptive.partitions.size(); ++i) {
    EXPECT_EQ(adaptive.partitions[i].start_minutes,
              fcfs.partitions[i].start_minutes);
    EXPECT_EQ(adaptive.partitions[i].end_minutes,
              fcfs.partitions[i].end_minutes);
    EXPECT_EQ(adaptive.partitions[i].clipped_best_cost,
              fcfs.partitions[i].clipped_best_cost);
  }

  // Ledger accounting closes against the grant log and the per-partition
  // roll-ups.
  EXPECT_EQ(adaptive.schedule.grants, adaptive.reclaim_grants.size());
  std::size_t preempted = 0, partition_grants = 0, partition_evals = 0;
  double used_sum = 0, partition_minutes = 0;
  std::map<int, double> core_end;
  for (const ReclaimGrant& g : adaptive.reclaim_grants) {
    EXPECT_GE(g.start_minutes, 0.0);
    EXPECT_LT(g.start_minutes, 240.0);
    EXPECT_GE(g.used_minutes, 0.0);
    if (g.preempted) ++preempted;
    used_sum += g.used_minutes;
    // Grants on one core never overlap (the log is in commit order).
    auto [it, fresh] = core_end.try_emplace(g.core, g.start_minutes);
    if (!fresh) EXPECT_GE(g.start_minutes, it->second - 1e-9);
    it->second = g.start_minutes + g.used_minutes;
  }
  EXPECT_EQ(adaptive.schedule.preemptions, preempted);
  EXPECT_NEAR(adaptive.schedule.regranted_minutes, used_sum, 1e-6);
  EXPECT_LE(adaptive.schedule.regranted_minutes,
            adaptive.schedule.reclaimed_minutes + 1e-6);
  for (const PartitionOutcome& p : adaptive.partitions) {
    partition_grants += p.reclaim_grants;
    partition_minutes += p.reclaim_minutes;
    partition_evals += p.reclaim_evaluations;
  }
  EXPECT_EQ(partition_grants, adaptive.schedule.grants);
  EXPECT_NEAR(partition_minutes, adaptive.schedule.regranted_minutes, 1e-6);
  EXPECT_EQ(partition_evals, adaptive.schedule.reclaim_evaluations);

  // The merged trace stays monotone and inside the budget.
  for (std::size_t i = 1; i < adaptive.trace.size(); ++i) {
    EXPECT_GE(adaptive.trace[i - 1].best_cost, adaptive.trace[i].best_cost);
    EXPECT_LE(adaptive.trace[i - 1].time_minutes,
              adaptive.trace[i].time_minutes);
  }
  if (!adaptive.trace.empty()) {
    EXPECT_LE(adaptive.trace.back().time_minutes, 240.0 + 1e-9);
  }
  EXPECT_GE(adaptive.schedule.exploration_end_minutes,
            adaptive.elapsed_minutes);
}

TEST(SchedulerTest, DeterministicAcrossExecThreads) {
  // Waves are planned sequentially and committed in plan order, so the
  // worker-pool size changes wall-clock only — never results.
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  std::vector<DseResult> runs;
  for (int threads : {1, 2, 8}) {
    ExplorerOptions options =
        BaseOptions(SchedulerKind::kAdaptive, StopKind::kEntropy);
    options.exec_threads = threads;
    runs.push_back(RunS2faDse(space, k, eval, options));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[0].best_cost, runs[r].best_cost);
    EXPECT_EQ(runs[0].evaluations, runs[r].evaluations);
    EXPECT_EQ(runs[0].elapsed_minutes, runs[r].elapsed_minutes);
    ExpectSameTrace(runs[0], runs[r]);
    ASSERT_EQ(runs[0].reclaim_grants.size(), runs[r].reclaim_grants.size());
    for (std::size_t g = 0; g < runs[0].reclaim_grants.size(); ++g) {
      const ReclaimGrant& a = runs[0].reclaim_grants[g];
      const ReclaimGrant& b = runs[r].reclaim_grants[g];
      EXPECT_EQ(a.partition, b.partition);
      EXPECT_EQ(a.core, b.core);
      EXPECT_EQ(a.start_minutes, b.start_minutes);
      EXPECT_EQ(a.used_minutes, b.used_minutes);
      EXPECT_EQ(a.finished, b.finished);
    }
  }
}

TEST(SchedulerTest, FcfsClipAccountingConsistent) {
  // End-to-end form of the two clip bugfixes: under truncation the run's
  // evaluation total is the sum of commits inside each granted span, and
  // every clipped (cost, config) pair comes from one improvement record.
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);
  ExplorerOptions options;
  options.time_limit_minutes = 60;  // tight budget forces truncation
  options.num_cores = 1;
  options.seed = 21;
  options.scheduler = SchedulerKind::kFcfs;
  DseResult r = RunS2faDse(space, k, eval, options);

  std::size_t span_evals = 0;
  for (const PartitionOutcome& p : r.partitions) {
    if (!p.scheduled) {
      EXPECT_EQ(p.clipped_evaluations, 0u);
      continue;
    }
    span_evals += p.clipped_evaluations;
    if (!std::isfinite(p.clipped_best_cost)) continue;
    bool pair_exists = false;
    const double span = p.end_minutes - p.start_minutes;
    for (const tuner::BestUpdate& up : p.result.improvements) {
      if (up.time_minutes <= span + 1e-9 &&
          up.cost == p.clipped_best_cost &&
          up.config == p.clipped_best_config) {
        pair_exists = true;
        break;
      }
    }
    EXPECT_TRUE(pair_exists) << p.description;
  }
  EXPECT_EQ(r.evaluations, span_evals);
}

TEST(SchedulerTest, AdaptiveTruncatedJournalResumeMatches) {
  // A mid-run kill under the adaptive scheduler: resuming from a journal
  // prefix reproduces the uninterrupted result (the repaid-call count is
  // cache-dependent here — see dse_test for the exact FCFS accounting).
  kir::Kernel k = NestedKernel();
  DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = HlsEval(k);

  // Unique per process: the plain and sanitized builds of this test run
  // concurrently under ctest and share TempDir.
  const std::string path = testing::TempDir() + "s2fa_sched_journal_prefix." +
                           std::to_string(::getpid()) + ".jsonl";
  std::remove(path.c_str());
  ExplorerOptions options;
  options.time_limit_minutes = 120;
  options.seed = 3;
  options.journal_path = path;
  options.scheduler = SchedulerKind::kAdaptive;
  DseResult first = RunS2faDse(space, k, eval, options);

  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), first.journal_entries);
  const std::size_t kept = lines.size() / 2;
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < kept; ++i) out << lines[i] << '\n';
  }

  DseResult resumed = RunS2faDse(space, k, eval, options);
  EXPECT_EQ(resumed.journal_resumed, kept);
  EXPECT_EQ(resumed.best_cost, first.best_cost);
  EXPECT_EQ(resumed.elapsed_minutes, first.elapsed_minutes);
  EXPECT_EQ(resumed.evaluations, first.evaluations);
  EXPECT_EQ(resumed.schedule.grants, first.schedule.grants);
  ExpectSameTrace(resumed, first);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s2fa::dse
