#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "b2c/compiler.h"
#include "blaze/stream.h"
#include "jvm/assembler.h"
#include "s2fa/framework.h"

namespace s2fa::blaze {
namespace {

using jvm::Assembler;
using jvm::MethodSignature;
using jvm::Type;
using jvm::Value;

// Doubler: double -> 2 * double, batch 8 (the cluster_test kernel).
jvm::ClassPool MakePool() {
  jvm::ClassPool pool;
  Assembler a;
  a.Load(Type::Double(), 0).DConst(2.0).DMul().Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double()};
  sig.ret = Type::Double();
  pool.Define("Doubler").AddMethod(
      jvm::MakeMethod("call", sig, true, 2, a.Finish()));
  return pool;
}

b2c::KernelSpec MakeSpec(std::int64_t batch = 8) {
  b2c::KernelSpec spec;
  spec.kernel_name = "doubler";
  spec.klass = "Doubler";
  spec.input.type = Type::Double();
  spec.input.fields = {{"x", Type::Double(), 1, false}};
  spec.output.type = Type::Double();
  spec.output.fields = {{"y", Type::Double(), 1, false}};
  spec.batch = batch;
  return spec;
}

Dataset DoublerInput(int n, int base = 0) {
  Dataset input;
  Column x;
  x.field = "x";
  x.element = Type::Double();
  for (int i = 0; i < n; ++i) x.data.push_back(Value::OfDouble(base + i));
  input.AddColumn(x);
  return input;
}

// One-record doubler stream: record `seq` carries the value `seq`, so the
// committed output must be exactly 2 * seq.
StreamRecord Gen(std::size_t ordinal) {
  StreamRecord record;
  record.kernel = "doubler";
  record.input = DoublerInput(1, static_cast<int>(ordinal));
  return record;
}

// Runtime with doubler replicas r0..r(n-1) and clusters spreading them one
// per shard; `inv_us` is the accelerator charge for one 8-record batch.
struct Harness {
  BlazeRuntime runtime;
  double inv_us = 0;
  int lanes = 0;

  explicit Harness(int replicas = 2) : lanes(replicas) {
    jvm::ClassPool pool = MakePool();
    Artifact artifact =
        BuildWithConfig(pool, MakeSpec(8), merlin::DesignConfig{});
    for (int i = 0; i < replicas; ++i) {
      RegisterWithBlaze(runtime, "r" + std::to_string(i), artifact);
    }
    inv_us = runtime.PerInvocationCost("r0").total_us;
  }

  BlazeCluster MakeCluster(ClusterOptions options = {}) {
    const int shards = std::min(lanes, 2);
    options.queue_capacity = std::max(options.queue_capacity,
                                      static_cast<std::size_t>(1) << 20);
    BlazeCluster cluster(runtime, options);
    for (int s = 0; s < shards; ++s) cluster.AddShard();
    for (int i = 0; i < lanes; ++i) {
      cluster.AddReplica(static_cast<std::size_t>(i % shards), "doubler",
                         "r" + std::to_string(i));
    }
    return cluster;
  }

  // Schedule `count` records at `fraction` of the cluster's modeled
  // capacity (lanes * 8 records per invocation charge).
  ArrivalSchedule At(double fraction, std::size_t count,
                     const std::string& tenant = "default") const {
    const double inter_us =
        inv_us / 8.0 / static_cast<double>(lanes) / fraction;
    ArrivalSchedule schedule;
    schedule.phases.push_back(
        {tenant, 0, inter_us * static_cast<double>(count), count});
    return schedule;
  }

  // Test options scaled off the invocation charge so thresholds track the
  // cost model instead of hard-coded microseconds.
  StreamOptions Opts() const {
    StreamOptions options;
    options.batch_max_records = 8;
    options.batch_age_us = 2 * inv_us;
    options.slo_us = 50 * inv_us;
    options.deadline_headroom_us = inv_us;
    options.codel_target_us = 5 * inv_us;
    options.codel_interval_us = 5 * inv_us;
    options.brownout_onset_us = 10 * inv_us;
    options.shed_onset_us = 20 * inv_us;
    return options;
  }
};

void ExpectDoubledRecord(const StreamRecordOutcome& out) {
  ASSERT_EQ(out.output.num_records(), 1u) << "seq " << out.seq;
  EXPECT_DOUBLE_EQ(out.output.ColumnByField("y").data[0].AsDouble(),
                   2.0 * static_cast<double>(out.seq))
      << "seq " << out.seq;
}

// Every record accounted exactly once, in every terminal stats bucket.
void ExpectAccounted(const StreamStats& stats, std::size_t count) {
  EXPECT_EQ(stats.arrivals, count);
  EXPECT_EQ(stats.committed + stats.committed_host + stats.shed_total(),
            count);
  EXPECT_EQ(stats.watermark_trace.size(), count);
}

void ExpectWatermarkMonotone(const StreamStats& stats) {
  double last = 0;
  for (const auto& [seq, at] : stats.watermark_trace) {
    EXPECT_GE(at, last) << "watermark regressed at seq " << seq;
    last = at;
  }
  EXPECT_DOUBLE_EQ(stats.watermark_us, last);
}

// Bit-exact canonical rendering of stream outcomes.
std::string Canon(const std::vector<StreamRecordOutcome>& outs) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& o : outs) {
    os << o.seq << '|' << o.tenant << '|' << StreamOutcomeName(o.outcome)
       << '|' << o.retries << '|' << o.arrival_us << '|' << o.terminal_us
       << '|' << o.external_commit_us << '|' << o.latency_us << '|';
    for (std::size_t c = 0; c < o.output.num_columns(); ++c) {
      for (const auto& v : o.output.column(c).data) os << v.AsDouble() << ',';
    }
    os << '\n';
  }
  return os.str();
}

// ---------------------------------------------------- arrival schedule

TEST(ArrivalScheduleTest, ParsesArriveDirectives) {
  ArrivalSchedule schedule = ParseArrivalSchedule(
      "arrive default @ 0 + 10ms x 100\n"
      "arrive noisy @ 5ms + 5ms x 50;");
  ASSERT_EQ(schedule.phases.size(), 2u);
  EXPECT_EQ(schedule.phases[0].tenant, "default");
  EXPECT_DOUBLE_EQ(schedule.phases[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(schedule.phases[0].duration_us, 10000.0);
  EXPECT_EQ(schedule.phases[0].count, 100u);
  EXPECT_EQ(schedule.phases[1].tenant, "noisy");
  EXPECT_DOUBLE_EQ(schedule.phases[1].start_us, 5000.0);
  EXPECT_EQ(schedule.phases[1].count, 50u);
}

// Exact messages: the schedule is user input, so the errors are interface.
TEST(ArrivalScheduleTest, RejectsMalformedSchedulesWithExactMessages) {
  auto message = [](const std::string& text) {
    try {
      ParseArrivalSchedule(text);
    } catch (const MalformedInput& e) {
      return std::string(e.what());
    }
    return std::string("<no throw>");
  };
  EXPECT_EQ(message("stream x 5"),
            "arrival schedule: unknown directive in 'streamx5'");
  EXPECT_EQ(message("arrive t 0 + 1 x 1"),
            "arrival schedule: expected '@' in 'arrivet0+1x1'");
  EXPECT_EQ(message("arrive t @ 1 x 5"),
            "arrival schedule: expected '+' in 'arrivet@1x5'");
  EXPECT_EQ(message("arrive t @ 0 + 0 x 5"),
            "arrival schedule: phase duration must be > 0 in 'arrivet@0+0x5'");
  EXPECT_EQ(message("arrive t @ 0 + 1ms x 0"),
            "arrival schedule: record count must be >= 1 in 'arrivet@0+1msx0'");
  EXPECT_EQ(
      message("arrive t @ 0 + 1ms x 5 junk"),
      "arrival schedule: trailing junk in 'arrivet@0+1msx5junk'");
  EXPECT_EQ(message(" ;; \n"), "arrival schedule: no phases");
}

TEST(ArrivalScheduleTest, ValidateRejectsHandBuiltPhases) {
  ArrivalSchedule empty;
  EXPECT_THROW(ValidateArrivalSchedule(empty), MalformedInput);
  ArrivalSchedule negative;
  negative.phases.push_back({"t", -1.0, 100.0, 5});
  EXPECT_THROW(ValidateArrivalSchedule(negative), MalformedInput);
  ArrivalSchedule anonymous;
  anonymous.phases.push_back({"", 0, 100.0, 5});
  EXPECT_THROW(ValidateArrivalSchedule(anonymous), MalformedInput);
}

// ------------------------------------------------------------ streaming

TEST(StreamTest, SubCapacityStreamsCommitWithinSlo) {
  Harness hx(2);
  BlazeCluster cluster = hx.MakeCluster();
  StreamOptions options = hx.Opts();
  StreamSession session(cluster, options);
  const std::size_t kCount = 400;
  auto outs = session.Run(hx.At(0.5, kCount), Gen);
  ASSERT_EQ(outs.size(), kCount);
  const StreamStats& stats = session.stats();
  ExpectAccounted(stats, kCount);
  ExpectWatermarkMonotone(stats);
  EXPECT_EQ(stats.committed, kCount) << "sub-capacity must not shed";
  EXPECT_EQ(stats.shed_total(), 0u);
  for (const auto& out : outs) {
    EXPECT_EQ(out.outcome, StreamOutcome::kCommitted);
    ExpectDoubledRecord(out);
    EXPECT_LE(out.latency_us, options.slo_us) << "seq " << out.seq;
  }
  EXPECT_LE(stats.LatencyQuantile(0.99), options.slo_us);
  EXPECT_GT(stats.batches_dispatched, 0u);
}

TEST(StreamTest, BatchCloseTriggerBreakdown) {
  Harness hx(2);
  // Count: a same-instant burst of exactly batch_max_records.
  {
    BlazeCluster cluster = hx.MakeCluster();
    StreamSession session(cluster, hx.Opts());
    ArrivalSchedule burst;
    burst.phases.push_back({"default", 0, 1e-3, 8});
    session.Run(burst, Gen);
    EXPECT_EQ(session.stats().close_count, 1u);
    EXPECT_EQ(session.stats().close_age, 0u);
  }
  // Age: a single record can only close by aging out.
  {
    BlazeCluster cluster = hx.MakeCluster();
    StreamSession session(cluster, hx.Opts());
    ArrivalSchedule one;
    one.phases.push_back({"default", 0, 1.0, 1});
    session.Run(one, Gen);
    EXPECT_EQ(session.stats().close_age, 1u);
    EXPECT_EQ(session.stats().close_count, 0u);
  }
  // Deadline: an SLO tighter than the age window forces deadline closes.
  {
    BlazeCluster cluster = hx.MakeCluster();
    StreamOptions options = hx.Opts();
    options.slo_us = hx.inv_us;
    options.deadline_headroom_us = hx.inv_us / 2;
    StreamSession session(cluster, options);
    ArrivalSchedule one;
    one.phases.push_back({"default", 0, 1.0, 1});
    session.Run(one, Gen);
    EXPECT_EQ(session.stats().close_deadline, 1u);
    EXPECT_EQ(session.stats().close_age, 0u);
  }
}

TEST(StreamTest, OverloadLadderShedsBoundedAndAccountsEverything) {
  Harness hx(2);
  BlazeCluster cluster = hx.MakeCluster();
  StreamOptions options = hx.Opts();
  // Tight ladder so sustained 3x overload marches through every level
  // instead of stabilizing inside the brownout band.
  options.brownout_onset_us = 5 * hx.inv_us;
  options.shed_onset_us = 10 * hx.inv_us;
  StreamSession session(cluster, options);
  const std::size_t kCount = 3000;
  auto outs = session.Run(hx.At(3.0, kCount), Gen);
  const StreamStats& stats = session.stats();
  ExpectAccounted(stats, kCount);
  ExpectWatermarkMonotone(stats);
  EXPECT_GT(stats.shed_total(), 0u) << "3x load must shed";
  EXPECT_GT(stats.committed + stats.committed_host, 0u)
      << "overload control must preserve goodput";
  EXPECT_EQ(stats.shed_queue_full, 0u)
      << "the ladder never FIFO-drops or overflows the cluster queue";
  for (const auto& out : outs) {
    if (!IsStreamShed(out.outcome)) ExpectDoubledRecord(out);
  }
  EXPECT_GT(stats.max_queue_delay_us, options.shed_onset_us);
}

TEST(StreamTest, BrownoutRoutesAControlledFractionToHost) {
  Harness hx(2);
  BlazeCluster cluster = hx.MakeCluster();
  StreamOptions options = hx.Opts();
  options.brownout_onset_us = 2 * hx.inv_us;
  options.shed_onset_us = 40 * hx.inv_us;
  options.slo_us = 100 * hx.inv_us;
  options.deadline_headroom_us = hx.inv_us;
  StreamSession session(cluster, options);
  const std::size_t kCount = 2000;
  auto outs = session.Run(hx.At(1.3, kCount), Gen);
  const StreamStats& stats = session.stats();
  ExpectAccounted(stats, kCount);
  ExpectWatermarkMonotone(stats);
  EXPECT_GT(stats.committed_host, 0u) << "brownout must engage above 1x";
  EXPECT_GT(stats.batches_host, 0u);
  EXPECT_LT(stats.batches_host, stats.batches_closed)
      << "brownout is a fraction, not a cliff";
  for (const auto& out : outs) {
    if (!IsStreamShed(out.outcome)) ExpectDoubledRecord(out);
  }
}

TEST(StreamTest, RetryBudgetBoundsTheRetryStorm) {
  Harness hx(2);
  BlazeCluster cluster = hx.MakeCluster();
  StreamOptions options = hx.Opts();
  options.brownout_onset_us = 5 * hx.inv_us;
  options.shed_onset_us = 10 * hx.inv_us;
  options.retry_budget.refill_per_sec = 0;  // no refill: burst only
  options.retry_budget.burst = 4;
  options.max_retries = 3;
  StreamSession session(cluster, options);
  const std::size_t kCount = 3000;
  session.Run(hx.At(3.0, kCount), Gen);
  const StreamStats& stats = session.stats();
  ExpectAccounted(stats, kCount);
  EXPECT_LE(stats.retries_granted, 4u)
      << "a zero-refill bucket grants at most its burst";
  EXPECT_GT(stats.shed_retry_budget, 0u)
      << "denied retries must be accounted";
}

TEST(StreamTest, FifoShedTailDropsInsteadOfChoosing) {
  Harness hx(2);
  BlazeCluster cluster = hx.MakeCluster();
  StreamOptions options = hx.Opts();
  options.policy = OverloadPolicy::kFifoShed;
  StreamSession session(cluster, options);
  const std::size_t kCount = 2000;
  session.Run(hx.At(2.5, kCount), Gen);
  const StreamStats& stats = session.stats();
  ExpectAccounted(stats, kCount);
  ExpectWatermarkMonotone(stats);
  EXPECT_GT(stats.shed_queue_full, 0u) << "FIFO must tail-drop at 2.5x";
  EXPECT_EQ(stats.shed_unmeetable, 0u);
  EXPECT_EQ(stats.shed_brownout, 0u);
  EXPECT_EQ(stats.shed_retry_budget, 0u);
  EXPECT_EQ(stats.retries_granted, 0u);
}

// Goodput = records visibly committed within their SLO. The strict ">"
// gate lives in bench_stream; here the ladder must at least never lose.
TEST(StreamTest, LadderGoodputAtLeastMatchesFifoShed) {
  Harness hx(2);
  auto goodput = [&](OverloadPolicy policy) {
    BlazeCluster cluster = hx.MakeCluster();
    StreamOptions options = hx.Opts();
    options.policy = policy;
    StreamSession session(cluster, options);
    auto outs = session.Run(hx.At(2.0, 2000), Gen);
    std::size_t good = 0;
    for (const auto& out : outs) {
      if (!IsStreamShed(out.outcome) && out.latency_us <= options.slo_us) {
        ++good;
      }
    }
    return good;
  };
  EXPECT_GE(goodput(OverloadPolicy::kLadder),
            goodput(OverloadPolicy::kFifoShed));
}

TEST(StreamTest, ChaosKillMidStreamLosesNothing) {
  Harness hx(4);
  BlazeCluster cluster = hx.MakeCluster();
  // Kill one fault domain a third in, restart later, with a latency spike
  // across the middle of the stream.
  const double horizon = 2000.0 * hx.inv_us / 8.0 / 4.0;
  std::ostringstream plan;
  plan << "kill 1 @ " << horizon / 3 << "; restart 1 @ " << horizon * 2 / 3
       << "; spike 2.5 @ " << horizon / 2 << " + " << horizon / 4;
  cluster.SetChaosPlan(ParseChaosPlan(plan.str()));
  StreamSession session(cluster, hx.Opts());
  const std::size_t kCount = 2000;
  auto outs = session.Run(hx.At(1.0, kCount), Gen);
  const StreamStats& stats = session.stats();
  ExpectAccounted(stats, kCount);
  ExpectWatermarkMonotone(stats);
  EXPECT_GT(stats.committed, 0u);
  for (const auto& out : outs) {
    if (!IsStreamShed(out.outcome)) ExpectDoubledRecord(out);
  }
}

TEST(StreamTest, BitIdenticalAcrossExecThreads) {
  Harness hx(4);
  auto run = [&](int exec_threads) {
    ClusterOptions coptions;
    coptions.exec_threads = exec_threads;
    BlazeCluster cluster = hx.MakeCluster(coptions);
    const double horizon = 1200.0 * hx.inv_us / 8.0 / 4.0;
    std::ostringstream plan;
    plan << "kill 0 @ " << horizon / 4 << "; restart 0 @ " << horizon / 2;
    cluster.SetChaosPlan(ParseChaosPlan(plan.str()));
    StreamSession session(cluster, hx.Opts());
    return Canon(session.Run(hx.At(1.5, 1200), Gen));
  };
  const std::string one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

TEST(StreamTest, SessionIsSingleShot) {
  Harness hx(2);
  BlazeCluster cluster = hx.MakeCluster();
  StreamSession session(cluster, hx.Opts());
  ArrivalSchedule one;
  one.phases.push_back({"default", 0, 1.0, 1});
  session.Run(one, Gen);
  EXPECT_THROW(session.Run(one, Gen), Error);
}

// -------------------------------------------------------------- reduce

// SumSq reduce kernel (the cluster_test reduce kernel): reduce records
// must never batch across each other and return unsliced outputs.
jvm::ClassPool MakeSumSqPool() {
  jvm::ClassPool pool;
  Assembler a;
  a.Load(Type::Double(), 0);
  a.Load(Type::Double(), 2).Load(Type::Double(), 2).DMul();
  a.DAdd().Ret(Type::Double());
  MethodSignature sig;
  sig.params = {Type::Double(), Type::Double()};
  sig.ret = Type::Double();
  pool.Define("SumSqKernel").AddMethod(
      jvm::MakeMethod("call", sig, true, 4, a.Finish()));
  return pool;
}

b2c::KernelSpec SumSqSpec(std::int64_t batch = 8) {
  b2c::KernelSpec spec;
  spec.kernel_name = "sumsq";
  spec.klass = "SumSqKernel";
  spec.pattern = kir::ParallelPattern::kReduce;
  spec.input.type = Type::Double();
  spec.input.fields = {{"x", Type::Double(), 1, false}};
  spec.output.type = Type::Double();
  spec.output.fields = {{"ret", Type::Double(), 1, false}};
  spec.batch = batch;
  return spec;
}

TEST(StreamTest, ReduceRecordsNeverBatchAcrossEachOther) {
  BlazeRuntime runtime;
  Artifact artifact =
      BuildWithConfig(MakeSumSqPool(), SumSqSpec(8), merlin::DesignConfig{});
  for (int i = 0; i < 2; ++i) {
    RegisterWithBlaze(runtime, "s" + std::to_string(i), artifact);
  }
  ClusterOptions coptions;
  coptions.queue_capacity = 1 << 20;
  BlazeCluster cluster(runtime, coptions);
  for (int s = 0; s < 2; ++s) cluster.AddShard();
  for (int i = 0; i < 2; ++i) {
    cluster.AddReplica(static_cast<std::size_t>(i % 2), "sumsq",
                       "s" + std::to_string(i));
  }
  const double inv_us = runtime.PerInvocationCost("s0").total_us;
  StreamOptions options;
  options.batch_max_records = 8;  // must still cap reduce at 1
  options.batch_age_us = 4 * inv_us;
  options.slo_us = 400 * inv_us;
  options.deadline_headroom_us = inv_us;
  options.codel_target_us = 40 * inv_us;
  options.codel_interval_us = 40 * inv_us;
  options.brownout_onset_us = 80 * inv_us;
  options.shed_onset_us = 160 * inv_us;
  StreamSession session(cluster, options);
  auto gen = [](std::size_t ordinal) {
    StreamRecord record;
    record.kernel = "sumsq";
    record.input = DoublerInput(16, static_cast<int>(ordinal));
    return record;
  };
  ArrivalSchedule schedule;
  const std::size_t kCount = 24;
  schedule.phases.push_back(
      {"default", 0, inv_us * 2.0 * static_cast<double>(kCount), kCount});
  auto outs = session.Run(schedule, gen);
  const StreamStats& stats = session.stats();
  ExpectAccounted(stats, kCount);
  EXPECT_EQ(stats.committed, kCount);
  EXPECT_EQ(stats.close_count, kCount) << "every reduce record closes alone";
  for (const auto& out : outs) {
    ASSERT_EQ(out.output.num_records(), 1u);
    double expect = 0;
    for (int i = 0; i < 16; ++i) {
      const double x = static_cast<double>(out.seq) + i;
      expect += x * x;
    }
    EXPECT_DOUBLE_EQ(out.output.ColumnByField("ret").data[0].AsDouble(),
                     expect)
        << "seq " << out.seq;
  }
}

}  // namespace
}  // namespace s2fa::blaze
