# Perf-smoke gate (ctest `perf_smoke`): runs the component microbenchmarks
# in quick mode, validates the perf ledger they emit against the schema and
# required coverage, and exercises the `s2fa perf-diff` regression gate
# against the checked-in golden snapshots. The golden-vs-fresh comparison
# uses an enormous threshold so only schema breakage — never timing noise —
# can fail the smoke test; the regression path is proven with a synthetic
# snapshot whose Merlin entry is doubled.
#
# The committed repo-root micro ledger (COMMITTED) is held to the same
# bar: it must stay loadable, schema-compatible, and coverage-complete, so
# a PR can never commit a ledger the gate itself cannot read.
#
# Inputs (all -D): BENCH_BIN CLI_BIN GOLDEN REGRESSED COMMITTED WORK_DIR
cmake_minimum_required(VERSION 3.20)

foreach(var BENCH_BIN CLI_BIN GOLDEN REGRESSED COMMITTED WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "perf_smoke: missing -D${var}=...")
  endif()
endforeach()

set(LEDGER "${WORK_DIR}/BENCH_micro_smoke.json")
file(REMOVE "${LEDGER}")

# --- 1. A fresh quick-mode run must emit the ledger.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "S2FA_PERF_LEDGER=${LEDGER}"
          "S2FA_GIT_REV=perf-smoke"
          "S2FA_BENCH_TIMESTAMP=perf-smoke"
          "${BENCH_BIN}" --benchmark_min_time=0.01
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET ERROR_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "perf_smoke: bench_micro_components failed (${bench_rc})")
endif()
if(NOT EXISTS "${LEDGER}")
  message(FATAL_ERROR "perf_smoke: no ledger written to ${LEDGER}")
endif()

# --- 2. Schema + coverage: version marker, env stamping, and a ns/op entry
# for every component the paper's DSE loop exercises.
file(READ "${LEDGER}" content)
string(JSON schema GET "${content}" schema)
if(NOT schema STREQUAL "s2fa-perf-ledger")
  message(FATAL_ERROR "perf_smoke: bad schema marker '${schema}'")
endif()
string(JSON version GET "${content}" version)
if(NOT version EQUAL 1)
  message(FATAL_ERROR "perf_smoke: unexpected ledger version '${version}'")
endif()
string(JSON rev GET "${content}" git_rev)
if(NOT rev STREQUAL "perf-smoke")
  message(FATAL_ERROR "perf_smoke: S2FA_GIT_REV not stamped (got '${rev}')")
endif()
foreach(bm
    BM_InterpreterPerRecord     # bytecode interpreter
    BM_KirEvalPerRecord         # kernel-IR evaluation
    BM_MerlinTransform          # Merlin transform
    BM_HlsEstimateSmallKernel   # HLS estimator
    BM_SerializationRoundTrip   # (de)serialization
    BM_FullDesignPointEvaluation)  # tuner round trip
  string(JSON ns ERROR_VARIABLE json_err
         GET "${content}" benchmarks ${bm} ns_per_op)
  if(json_err)
    message(FATAL_ERROR "perf_smoke: ledger is missing ${bm}: ${json_err}")
  endif()
  if(NOT ns GREATER 0)
    message(FATAL_ERROR "perf_smoke: ${bm} ns_per_op '${ns}' is not > 0")
  endif()
endforeach()

# --- 3. The fresh ledger must be comparable against the golden snapshot
# (schema compatibility; the huge threshold keeps timing out of the gate).
execute_process(
  COMMAND "${CLI_BIN}" perf-diff "${GOLDEN}" "${LEDGER}"
          --threshold 1000000
  RESULT_VARIABLE diff_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "perf_smoke: perf-diff golden-vs-fresh failed (${diff_rc})")
endif()

# --- 4. Identical ledgers: exit 0. A >=threshold regression: exit 1.
execute_process(
  COMMAND "${CLI_BIN}" perf-diff "${GOLDEN}" "${GOLDEN}"
  RESULT_VARIABLE same_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT same_rc EQUAL 0)
  message(FATAL_ERROR
          "perf_smoke: perf-diff on identical ledgers exited ${same_rc}")
endif()
execute_process(
  COMMAND "${CLI_BIN}" perf-diff "${GOLDEN}" "${REGRESSED}"
  RESULT_VARIABLE reg_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT reg_rc EQUAL 1)
  message(FATAL_ERROR
          "perf_smoke: perf-diff missed the synthetic regression "
          "(exited ${reg_rc}, wanted 1)")
endif()

# --- 5. The committed repo-root ledger must parse, carry the same
# coverage, and diff cleanly against a fresh run (huge threshold again:
# machines differ; only schema/coverage rot can fail here).
if(NOT EXISTS "${COMMITTED}")
  message(FATAL_ERROR "perf_smoke: committed ledger ${COMMITTED} is missing")
endif()
file(READ "${COMMITTED}" committed_content)
foreach(bm
    BM_InterpreterPerRecord
    BM_KirEvalPerRecord
    BM_MerlinTransform
    BM_HlsEstimateSmallKernel
    BM_SerializationRoundTrip
    BM_FullDesignPointEvaluation)
  string(JSON ns ERROR_VARIABLE json_err
         GET "${committed_content}" benchmarks ${bm} ns_per_op)
  if(json_err)
    message(FATAL_ERROR
            "perf_smoke: committed ledger is missing ${bm}: ${json_err}")
  endif()
endforeach()
execute_process(
  COMMAND "${CLI_BIN}" perf-diff "${COMMITTED}" "${LEDGER}"
          --threshold 1000000
  RESULT_VARIABLE committed_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT committed_rc EQUAL 0)
  message(FATAL_ERROR
          "perf_smoke: perf-diff committed-vs-fresh failed (${committed_rc})")
endif()

message(STATUS "perf_smoke: ledger valid, gate catches regressions")
