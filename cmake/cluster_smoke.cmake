# Cluster-smoke gate (ctest `cluster_smoke`): runs the sharded-serving
# replay (bench_cluster) in quick mode — every chaos/fairness/determinism
# gate still fires, at ~1/50th the request count — validates the serving
# perf ledger it emits, and exercises the `s2fa perf-diff` regression gate
# against the checked-in serving snapshots. As in perf_smoke.cmake, the
# golden-vs-fresh comparison uses an enormous threshold so only schema
# breakage — never timing noise — can fail the smoke test; the regression
# path is proven with a synthetic snapshot whose chaos entry is doubled.
#
# Inputs (all -D): BENCH_BIN CLI_BIN GOLDEN REGRESSED WORK_DIR
cmake_minimum_required(VERSION 3.20)

foreach(var BENCH_BIN CLI_BIN GOLDEN REGRESSED WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cluster_smoke: missing -D${var}=...")
  endif()
endforeach()

set(LEDGER "${WORK_DIR}/BENCH_serving_smoke.json")
file(REMOVE "${LEDGER}")

# --- 1. A quick-mode replay must pass its own exit-code gates (zero lost,
# reference match under chaos, scaling, fairness, determinism) and emit the
# serving ledger.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "S2FA_BENCH_QUICK=1"
          "S2FA_PERF_LEDGER=${LEDGER}"
          "S2FA_GIT_REV=cluster-smoke"
          "S2FA_BENCH_TIMESTAMP=cluster-smoke"
          "${BENCH_BIN}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out ERROR_VARIABLE bench_out)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "cluster_smoke: bench_cluster gates failed (${bench_rc}):\n"
          "${bench_out}")
endif()
if(NOT EXISTS "${LEDGER}")
  message(FATAL_ERROR "cluster_smoke: no ledger written to ${LEDGER}")
endif()

# --- 2. Schema + coverage: version marker, env stamping, and a ns/op entry
# for every replay phase the serving trajectory tracks.
file(READ "${LEDGER}" content)
string(JSON schema GET "${content}" schema)
if(NOT schema STREQUAL "s2fa-perf-ledger")
  message(FATAL_ERROR "cluster_smoke: bad schema marker '${schema}'")
endif()
string(JSON version GET "${content}" version)
if(NOT version EQUAL 1)
  message(FATAL_ERROR "cluster_smoke: unexpected ledger version '${version}'")
endif()
string(JSON rev GET "${content}" git_rev)
if(NOT rev STREQUAL "cluster-smoke")
  message(FATAL_ERROR "cluster_smoke: S2FA_GIT_REV not stamped (got '${rev}')")
endif()
foreach(bm
    cluster.scale.shard1.request   # capacity probe, 1 fault domain
    cluster.scale.shard2.request
    cluster.scale.shard4.request
    cluster.clean.request          # paced baseline p50
    cluster.chaos.request          # kill/restart/burst/spike/poison phase
    cluster.flood.payer.request)   # paying tenant under the flood
  string(JSON ns ERROR_VARIABLE json_err
         GET "${content}" benchmarks ${bm} ns_per_op)
  if(json_err)
    message(FATAL_ERROR "cluster_smoke: ledger is missing ${bm}: ${json_err}")
  endif()
  if(NOT ns GREATER 0)
    message(FATAL_ERROR "cluster_smoke: ${bm} ns_per_op '${ns}' is not > 0")
  endif()
endforeach()

# --- 3. The fresh ledger must be comparable against the golden snapshot
# (schema compatibility; the huge threshold keeps timing out of the gate).
execute_process(
  COMMAND "${CLI_BIN}" perf-diff "${GOLDEN}" "${LEDGER}"
          --threshold 1000000
  RESULT_VARIABLE diff_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "cluster_smoke: perf-diff golden-vs-fresh failed (${diff_rc})")
endif()

# --- 4. Identical ledgers: exit 0. A >=threshold regression: exit 1.
execute_process(
  COMMAND "${CLI_BIN}" perf-diff "${GOLDEN}" "${GOLDEN}"
  RESULT_VARIABLE same_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT same_rc EQUAL 0)
  message(FATAL_ERROR
          "cluster_smoke: perf-diff on identical ledgers exited ${same_rc}")
endif()
execute_process(
  COMMAND "${CLI_BIN}" perf-diff "${GOLDEN}" "${REGRESSED}"
  RESULT_VARIABLE reg_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT reg_rc EQUAL 1)
  message(FATAL_ERROR
          "cluster_smoke: perf-diff missed the synthetic regression "
          "(exited ${reg_rc}, wanted 1)")
endif()

message(STATUS "cluster_smoke: gates pass, ledger valid, diff catches regressions")
