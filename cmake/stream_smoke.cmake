# Stream-smoke gate (ctest `stream_smoke`): runs the streaming-serving
# replay (bench_stream) in quick mode — the sub-capacity SLO, chaos
# zero-lost, ladder-vs-FIFO goodput, and determinism gates all still fire,
# at ~1/50th the record count — validates the stream entries it merges into
# the serving perf ledger, and exercises the `s2fa perf-diff` regression
# gate against the checked-in stream snapshots. As in cluster_smoke.cmake,
# the golden-vs-fresh comparison uses an enormous threshold so only schema
# breakage — never timing noise — can fail the smoke test; the regression
# path is proven with a synthetic snapshot whose overload entry is doubled.
#
# Inputs (all -D): BENCH_BIN CLI_BIN GOLDEN REGRESSED WORK_DIR
cmake_minimum_required(VERSION 3.20)

foreach(var BENCH_BIN CLI_BIN GOLDEN REGRESSED WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "stream_smoke: missing -D${var}=...")
  endif()
endforeach()

set(LEDGER "${WORK_DIR}/BENCH_stream_smoke.json")
file(REMOVE "${LEDGER}")

# --- 1. A quick-mode replay must pass its own exit-code gates (sub-capacity
# SLO, chaos zero-lost, overload accounting, ladder goodput beats FIFO,
# exec-thread determinism) and emit the stream ledger entries.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "S2FA_BENCH_QUICK=1"
          "S2FA_PERF_LEDGER=${LEDGER}"
          "S2FA_GIT_REV=stream-smoke"
          "S2FA_BENCH_TIMESTAMP=stream-smoke"
          "${BENCH_BIN}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out ERROR_VARIABLE bench_out)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "stream_smoke: bench_stream gates failed (${bench_rc}):\n"
          "${bench_out}")
endif()
if(NOT EXISTS "${LEDGER}")
  message(FATAL_ERROR "stream_smoke: no ledger written to ${LEDGER}")
endif()

# --- 2. Schema + coverage: version marker, env stamping, and a ns/op entry
# for every stream phase the serving trajectory tracks.
file(READ "${LEDGER}" content)
string(JSON schema GET "${content}" schema)
if(NOT schema STREQUAL "s2fa-perf-ledger")
  message(FATAL_ERROR "stream_smoke: bad schema marker '${schema}'")
endif()
string(JSON version GET "${content}" version)
if(NOT version EQUAL 1)
  message(FATAL_ERROR "stream_smoke: unexpected ledger version '${version}'")
endif()
string(JSON rev GET "${content}" git_rev)
if(NOT rev STREQUAL "stream-smoke")
  message(FATAL_ERROR "stream_smoke: S2FA_GIT_REV not stamped (got '${rev}')")
endif()
foreach(bm
    stream.sub.record              # 0.5x-capacity stream, external p50
    stream.chaos.record            # kill/restart/spike mid-stream
    stream.overload.ladder.record) # 2x overload through the ladder
  string(JSON ns ERROR_VARIABLE json_err
         GET "${content}" benchmarks ${bm} ns_per_op)
  if(json_err)
    message(FATAL_ERROR "stream_smoke: ledger is missing ${bm}: ${json_err}")
  endif()
  if(NOT ns GREATER 0)
    message(FATAL_ERROR "stream_smoke: ${bm} ns_per_op '${ns}' is not > 0")
  endif()
endforeach()

# --- 3. The fresh ledger must be comparable against the golden snapshot
# (schema compatibility; the huge threshold keeps timing out of the gate).
execute_process(
  COMMAND "${CLI_BIN}" perf-diff "${GOLDEN}" "${LEDGER}"
          --threshold 1000000
  RESULT_VARIABLE diff_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "stream_smoke: perf-diff golden-vs-fresh failed (${diff_rc})")
endif()

# --- 4. Identical ledgers: exit 0. A >=threshold regression: exit 1.
execute_process(
  COMMAND "${CLI_BIN}" perf-diff "${GOLDEN}" "${GOLDEN}"
  RESULT_VARIABLE same_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT same_rc EQUAL 0)
  message(FATAL_ERROR
          "stream_smoke: perf-diff on identical ledgers exited ${same_rc}")
endif()
execute_process(
  COMMAND "${CLI_BIN}" perf-diff "${GOLDEN}" "${REGRESSED}"
  RESULT_VARIABLE reg_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT reg_rc EQUAL 1)
  message(FATAL_ERROR
          "stream_smoke: perf-diff missed the synthetic regression "
          "(exited ${reg_rc}, wanted 1)")
endif()

message(STATUS "stream_smoke: gates pass, ledger valid, diff catches regressions")
