# Fig3-smoke gate (ctest `fig3_smoke`): runs the Fig. 3 DSE reproduction
# in quick mode — one seed on a shortened budget — which keeps exactly one
# exit-code gate live: the bottleneck-guided technique ablation (the
# bandit+bottleneck arm set not worse than the default roster on every
# app, strictly better on at least two, and bit-identical across
# exec_threads 1/2/8). Also pins the artifact-routing contract: outputs
# land under S2FA_BENCH_OUT, never in the harness's working directory.
#
# Inputs (all -D): BENCH_BIN WORK_DIR
cmake_minimum_required(VERSION 3.20)

foreach(var BENCH_BIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "fig3_smoke: missing -D${var}=...")
  endif()
endforeach()

set(OUT_DIR "${WORK_DIR}/fig3_smoke_out")
file(REMOVE_RECURSE "${OUT_DIR}")
file(REMOVE "${WORK_DIR}/fig3_metrics.json" "${WORK_DIR}/fig3_trace.csv")

# --- 1. Quick mode must pass its technique-ablation exit-code gate.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "S2FA_BENCH_QUICK=1"
          "S2FA_BENCH_OUT=${OUT_DIR}"
          "${BENCH_BIN}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out ERROR_VARIABLE bench_out)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "fig3_smoke: bench_fig3 technique gate failed (${bench_rc}):\n"
          "${bench_out}")
endif()

# --- 2. Artifacts land under S2FA_BENCH_OUT ...
foreach(artifact fig3_trace.csv fig3_metrics.json)
  if(NOT EXISTS "${OUT_DIR}/${artifact}")
    message(FATAL_ERROR "fig3_smoke: ${artifact} not written to ${OUT_DIR}")
  endif()
endforeach()

# --- 3. ... and never in the working directory (the old CWD-pollution bug
# that left stray *_metrics.json files at the repo root).
foreach(stray fig3_metrics.json fig3_trace.csv)
  if(EXISTS "${WORK_DIR}/${stray}")
    message(FATAL_ERROR
            "fig3_smoke: ${stray} leaked into the working directory")
  endif()
endforeach()

message(STATUS "fig3_smoke: technique gate passes, artifacts routed to ${OUT_DIR}")
